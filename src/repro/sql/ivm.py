"""Incremental view maintenance for crossfilter-style brush queries.

The paper's interactive scenarios re-execute the full
scan→filter→aggregate pipeline on every brush move, so interaction
latency is O(rows) no matter how small the brush delta is.  This module
maintains materialized group-by aggregates per eligible query shape and,
when the brush moves, touches only the rows *entering or leaving* the
predicate range — O(delta) work per interaction (falcon-style
prefiltering, specialised to the reproduction's columnar engine).

How a view works
----------------
At registration the view builds a *prefiltered index tile*: the row
indices that pass the query's static conjuncts, sorted by the brush
column's value.  Any brush interval then maps to one contiguous slice of
that tile via binary search, and moving the brush from ``[a0, b0)`` to
``[a1, b1)`` yields at most two entering and two leaving contiguous row
ranges.  Each delta range is factorized into group segments and merged
into the materialized per-group state through the same ``reduceat``
kernels the serial executor uses:

* ``COUNT`` / ``COUNT(*)`` — add/subtract per-group counts,
* ``SUM`` / ``AVG`` — add/subtract per-group sums (AVG = sum + count),
* ``MIN`` / ``MAX`` — merge on entry; on a retraction that may remove
  the current extremum, re-scan just the affected groups' in-range rows.

Results are **bit-identical** to the serial executor, not merely close:
``SUM``/``AVG`` views are only eligible when the aggregate argument is
integer-valued and small enough that every partial sum is exactly
representable in a float64, so incremental adds/subtracts commute
exactly.  ``COUNT``/``MIN``/``MAX`` are exact for any numeric data.
Ineligible shapes or data simply decline and the engine re-scans.

Eligibility rules, the delta algebra, and the retraction fallback are
documented in docs/IVM.md; the differential test harness lives in
tests/test_ivm.py and the latency benchmark in bench/ivm.py.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ExecutionError, ReproError
from repro.sql.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    SelectItem,
    Star,
    UnaryOp,
    WindowFunction,
    contains_aggregate,
    walk_expression,
)
from repro.sql.executor import (
    ExecutionStats,
    Executor,
    ExpressionEvaluator,
    _combine_scalar,
)
from repro.sql.functions import apply_aggregate_segments, is_string_array
from repro.sql.planner import (
    AggregateNode,
    BrushInterval,
    IVMTemplate,
    LogicalPlan,
    MaterializedNode,
    SortNode,
    ivm_template,
)
from repro.storage.catalog import Catalog
from repro.storage.column import Column, factorize_array
from repro.storage.table import Table, group_segments

#: Largest magnitude at which consecutive float64 integers stay distinct.
_EXACT_LIMIT = float(2**53)

#: Composite group codes must stay well inside int64.
_MAX_COMPOSITE = 2**62


@dataclass(frozen=True)
class IVMConfig:
    """Tunables of one :class:`IVMManager`.

    ``strict`` enables the extra eligibility rules the SQLite backend
    needs for bit-identical interception (see :meth:`IVMManager._strict_ok`):
    bare-column group keys and aggregate arguments, an ORDER BY covering
    every group key (deterministic row order), no NULL group-key values,
    and a restricted expression grammar whose semantics the differential
    corpus has validated against SQLite.
    """

    #: LRU capacity of materialized views per manager.
    max_views: int = 32
    #: Register a view on the Nth sighting of an eligible query shape,
    #: so one-shot queries never pay the build cost.
    register_after: int = 2
    #: Extra eligibility rules for cross-backend (SQLite) parity.
    strict: bool = False


def _exactly_summable(values: np.ndarray, n_rows: int) -> bool:
    """Whether every subset sum of ``values`` is exact in float64.

    True when all finite values are integer-valued and ``n_rows`` of the
    largest magnitude stay below 2**53: then every partial sum the
    serial ``reduceat`` kernel or the incremental add/subtract path can
    form is exactly representable, so the two agree bitwise.
    """
    finite = values[~np.isnan(values)]
    if finite.size == 0:
        return True
    if not np.all(finite == np.trunc(finite)):
        return False
    peak = float(np.max(np.abs(finite)))
    return max(peak, 1.0) * max(n_rows, 1) < _EXACT_LIMIT


def _delta_ranges(
    a0: int, b0: int, a1: int, b1: int
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Entering/leaving position ranges for a brush move ``[a0,b0)→[a1,b1)``.

    Both lists hold at most two contiguous ``[lo, hi)`` ranges; a
    monotone brush drag produces exactly one entering *or* leaving range.
    """
    overlap_lo, overlap_hi = max(a0, a1), min(b0, b1)
    if overlap_lo >= overlap_hi:
        enter = [(a1, b1)]
        leave = [(a0, b0)]
    else:
        enter = [(a1, overlap_lo), (overlap_hi, b1)]
        leave = [(a0, overlap_lo), (overlap_hi, b0)]
    return (
        [(lo, hi) for lo, hi in enter if hi > lo],
        [(lo, hi) for lo, hi in leave if hi > lo],
    )


class _AggState:
    """Materialized state of one aggregate call across all groups."""

    __slots__ = ("name", "values", "is_string", "count", "total", "extremum")

    def __init__(self, name: str, values: np.ndarray | None, n_states: int) -> None:
        self.name = name
        self.values = values
        self.is_string = values is not None and is_string_array(values)
        #: Non-null in-range rows per group (drives NULL-aware results).
        self.count = np.zeros(n_states, dtype=np.int64)
        self.total = (
            np.zeros(n_states, dtype=np.float64) if name in ("SUM", "AVG") else None
        )
        self.extremum = (
            np.full(n_states, np.nan, dtype=np.float64)
            if name in ("MIN", "MAX")
            else None
        )


class MaterializedView:
    """One maintained group-by aggregate over a prefiltered index tile."""

    def __init__(
        self,
        template: IVMTemplate,
        table: Table,
        sort_idx: np.ndarray,
        sorted_values: np.ndarray,
        n_valid: int,
        state_codes: np.ndarray,
        n_states: int,
        key_values: list[list[object]],
        states: dict[str, _AggState],
    ) -> None:
        self.table_name = template.table_name
        self.base_rows = table.num_rows
        self._aggregate = template.aggregate
        self._grouped = bool(template.aggregate.group_by)
        #: Row indices passing the static conjuncts, sorted by brush value.
        self._sort_idx = sort_idx
        self._sorted_values = sorted_values
        self._n_valid = n_valid
        #: Compact group index of every base-table row.
        self._state_codes = state_codes
        self._n_states = n_states
        #: Decoded group-key value per state, one list per group-by key.
        self._key_values = key_values
        self._states = states
        self._count_star = np.zeros(n_states, dtype=np.int64)
        #: Current brush position range over the sorted tile.
        self._cur = (0, 0)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, template: IVMTemplate, table: Table) -> "MaterializedView | None":
        """Materialize the view, or ``None`` when the data is ineligible."""
        n = table.num_rows
        brush = table.column(template.brush_column)
        if not brush.is_numeric():
            return None

        # Mirror the serial aggregate path's alias pre-computation so
        # GROUP BY may reference SELECT aliases exactly as it does there.
        evaluator = ExpressionEvaluator(table)
        alias_arrays: dict[str, np.ndarray] = {}
        for item in template.aggregate.items:
            if item.alias and not contains_aggregate(item.expression) and not isinstance(
                item.expression, (Star, WindowFunction)
            ):
                try:
                    alias_arrays[item.alias] = evaluator.evaluate(item.expression)
                except ExecutionError:
                    continue
        evaluator = ExpressionEvaluator(table, alias_values=alias_arrays)

        # Static conjuncts: the WHERE clause minus the brush.  A row is in
        # the view's domain iff every conjunct evaluates to exactly 1.0 —
        # identical to the serial filter's three-valued `mask == 1.0`.
        domain = np.ones(n, dtype=bool)
        static_evaluator = ExpressionEvaluator(table)
        for conjunct in template.static_conjuncts:
            domain &= static_evaluator.evaluate(conjunct) == 1.0

        domain_rows = np.flatnonzero(domain)
        order = np.argsort(brush.values[domain_rows], kind="stable")
        sort_idx = domain_rows[order]
        sorted_values = brush.values[sort_idx]
        n_valid = int(len(sorted_values) - np.isnan(sorted_values).sum())

        # Group keys: composite mixed-radix codes over per-key factorized
        # codes.  Ascending composite order reproduces the serial group
        # order (numbers < strings < NULL per key, lexicographic across
        # keys), so emitting states in index order is row-identical.
        group_by = template.aggregate.group_by
        if group_by:
            composite = np.zeros(n, dtype=np.int64)
            cardinality = 1
            per_key: list[tuple[np.ndarray, list[object]]] = []
            for expr in group_by:
                codes, uniques = factorize_array(evaluator.evaluate(expr))
                per_key.append((codes, uniques))
                cardinality *= max(len(uniques), 1)
                if cardinality > _MAX_COMPOSITE:
                    return None
                composite = composite * max(len(uniques), 1) + codes
            uniq, state_codes = np.unique(composite, return_inverse=True)
            state_codes = state_codes.astype(np.int64)
            n_states = len(uniq)
            key_values: list[list[object]] = [[] for _ in group_by]
            remainder = uniq.copy()
            for index in range(len(group_by) - 1, -1, -1):
                _, uniques = per_key[index]
                radix = max(len(uniques), 1)
                key_values[index] = [uniques[c] for c in remainder % radix]
                remainder //= radix
        else:
            state_codes = np.zeros(n, dtype=np.int64)
            n_states = 1
            key_values = []

        # One maintained state per distinct aggregate call.
        states: dict[str, _AggState] = {}
        for item in template.aggregate.items:
            for expr in walk_expression(item.expression):
                if not isinstance(expr, FunctionCall):
                    continue
                name = expr.name.upper()
                if name not in AGGREGATE_FUNCTIONS or str(expr) in states:
                    continue
                if expr.is_star:
                    continue  # COUNT(*) reads the shared row counter
                values = evaluator.evaluate(expr.args[0])
                if is_string_array(values):
                    if name != "COUNT":
                        return None
                elif name in ("SUM", "AVG") and not _exactly_summable(values, n):
                    return None
                states[str(expr)] = _AggState(name, values, n_states)

        return cls(
            template,
            table,
            sort_idx,
            sorted_values,
            n_valid,
            state_codes,
            n_states,
            key_values,
            states,
        )

    # ------------------------------------------------------------------ #
    # Brush positions
    # ------------------------------------------------------------------ #
    def positions(self, interval: BrushInterval) -> tuple[int, int]:
        """Map a brush interval to a ``[a, b)`` slice of the sorted tile.

        NaN brush values sort last and are excluded by the ``n_valid``
        bound — matching the serial filter, where any comparison with
        NULL yields NULL and drops the row.
        """
        if interval.is_empty():
            return 0, 0
        values = self._sorted_values[: self._n_valid]
        low, high = interval.low, interval.high
        a = 0
        if low is not None:
            side = "left" if interval.low_inclusive else "right"
            a = int(np.searchsorted(values, low, side=side))
        b = self._n_valid
        if high is not None:
            side = "right" if interval.high_inclusive else "left"
            b = int(np.searchsorted(values, high, side=side))
        return a, max(a, b)

    # ------------------------------------------------------------------ #
    # Delta maintenance
    # ------------------------------------------------------------------ #
    def maintain(self, interval: BrushInterval) -> tuple[int, int, int]:
        """Advance the state to ``interval``.

        Returns ``(delta_rows, fallbacks, fallback_rows)`` — the rows
        entering/leaving the range, and the MIN/MAX retraction re-scans
        that were required (count and rows scanned).
        """
        a1, b1 = self.positions(interval)
        a0, b0 = self._cur
        if (a1, b1) == (a0, b0):
            return 0, 0, 0
        enter_ranges, leave_ranges = _delta_ranges(a0, b0, a1, b1)
        leave_rows = self._range_rows(leave_ranges)
        enter_rows = self._range_rows(enter_ranges)
        touched: list[np.ndarray] = []
        refresh: dict[str, np.ndarray] = {}
        if len(leave_rows):
            self._apply_delta(leave_rows, -1, touched, refresh)
        if len(enter_rows):
            self._apply_delta(enter_rows, +1, touched, None)
        self._cur = (a1, b1)

        # Groups whose last in-range non-null value left: clear extrema.
        if touched:
            all_touched = np.unique(np.concatenate(touched))
            for state in self._states.values():
                if state.extremum is not None:
                    emptied = all_touched[state.count[all_touched] == 0]
                    state.extremum[emptied] = np.nan

        # MIN/MAX retraction fallback: the leaving rows may have carried a
        # group's extremum, so re-scan those groups' in-range rows.
        fallbacks = 0
        fallback_rows = 0
        for key, candidates in refresh.items():
            state = self._states[key]
            needed = candidates[state.count[candidates] > 0]
            if needed.size:
                fallbacks += 1
                fallback_rows += b1 - a1
                self._refresh_extrema(state, needed, a1, b1)
        return len(leave_rows) + len(enter_rows), fallbacks, fallback_rows

    def _range_rows(self, ranges: list[tuple[int, int]]) -> np.ndarray:
        if not ranges:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self._sort_idx[lo:hi] for lo, hi in ranges])

    def _apply_delta(
        self,
        rows: np.ndarray,
        sign: int,
        touched_out: list[np.ndarray],
        refresh: dict[str, np.ndarray] | None,
    ) -> None:
        """Merge one delta row set into the state with the given sign.

        Deltas reduce through :func:`apply_aggregate_segments` — the same
        kernel the serial executor uses — so per-segment sums/counts are
        computed identically; the exact-integer eligibility rule then
        makes the running add/subtract bit-identical to a full re-scan.
        """
        codes = self._state_codes[rows]
        order, starts, ends = group_segments([codes], len(rows))
        touched = codes[order[starts]]
        touched_out.append(touched)
        self._count_star[touched] += sign * (ends - starts)
        for key, state in self._states.items():
            values = state.values[rows][order]
            counts = np.asarray(
                apply_aggregate_segments("COUNT", values, starts, ends),
                dtype=np.float64,
            ).astype(np.int64)
            if state.total is not None:
                sums = apply_aggregate_segments("SUM", values, starts, ends)
                state.total[touched] += sign * np.asarray(
                    [0.0 if s is None else s for s in sums], dtype=np.float64
                )
            if state.extremum is not None:
                merge = np.fmin if state.name == "MIN" else np.fmax
                segment = np.asarray(
                    [
                        np.nan if value is None else value
                        for value in apply_aggregate_segments(
                            state.name, values, starts, ends
                        )
                    ],
                    dtype=np.float64,
                )
                if sign > 0:
                    state.extremum[touched] = merge(state.extremum[touched], segment)
                elif refresh is not None:
                    current = state.extremum[touched]
                    if state.name == "MIN":
                        at_risk = segment <= current
                    else:
                        at_risk = segment >= current
                    if at_risk.any():
                        refresh[key] = np.union1d(
                            refresh.get(key, np.empty(0, dtype=np.int64)),
                            touched[at_risk],
                        )
            state.count[touched] += sign * counts

    def _refresh_extrema(
        self, state: _AggState, needed: np.ndarray, a: int, b: int
    ) -> None:
        """Recompute MIN/MAX of the ``needed`` groups over the live range."""
        in_range = self._sort_idx[a:b]
        selected = np.zeros(self._n_states, dtype=bool)
        selected[needed] = True
        rows = in_range[selected[self._state_codes[in_range]]]
        state.extremum[needed] = np.nan
        if not len(rows):
            return
        codes = self._state_codes[rows]
        order, starts, ends = group_segments([codes], len(rows))
        touched = codes[order[starts]]
        values = state.values[rows][order]
        segment = apply_aggregate_segments(state.name, values, starts, ends)
        state.extremum[touched] = np.asarray(
            [np.nan if value is None else value for value in segment],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def materialize(self) -> Table:
        """Emit the aggregate rows exactly as the serial executor would.

        Grouped views emit only groups with in-range rows, in ascending
        composite-code order — the serial group order.  A global
        aggregate always emits its single row, matching the serial
        whole-table segment (even over an empty selection).
        """
        if self._grouped:
            present = np.flatnonzero(self._count_star > 0)
        else:
            present = np.arange(1)
        columns = [
            Column.from_values(
                item.output_name(index), self._finalize(item.expression, present)
            )
            for index, item in enumerate(self._aggregate.items)
        ]
        return Table(columns, name=self.table_name)

    def _finalize(self, expr: Expression, present: np.ndarray) -> list[object]:
        if isinstance(expr, FunctionCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
            if expr.is_star:
                return [float(c) for c in self._count_star[present]]
            state = self._states[str(expr)]
            counts = state.count[present]
            name = state.name
            if name == "COUNT":
                return [float(c) for c in counts]
            if name == "SUM":
                totals = state.total[present]
                return [
                    None if c == 0 else float(t) for c, t in zip(counts, totals)
                ]
            if name == "AVG":
                totals = state.total[present]
                return [
                    None if c == 0 else float(t / np.float64(c))
                    for c, t in zip(counts, totals)
                ]
            extrema = state.extremum[present]
            return [None if c == 0 else float(m) for c, m in zip(counts, extrema)]
        if isinstance(expr, BinaryOp):
            left = self._finalize(expr.left, present)
            right = self._finalize(expr.right, present)
            return [_combine_scalar(expr.op, lv, rv) for lv, rv in zip(left, right)]
        if isinstance(expr, UnaryOp) and expr.op == "-":
            inner = self._finalize(expr.operand, present)
            return [None if value is None else -float(value) for value in inner]
        if isinstance(expr, Literal):
            return [expr.value] * len(present)
        index = self._group_key_index(expr)
        return [self._key_values[index][s] for s in present]

    def _group_key_index(self, expr: Expression) -> int:
        group_by = self._aggregate.group_by
        for index, key in enumerate(group_by):
            if str(expr) == str(key):
                return index
        if isinstance(expr, ColumnRef):
            for index, key in enumerate(group_by):
                if isinstance(key, ColumnRef) and key.name == expr.name:
                    return index
        raise ExecutionError(f"expression {expr} is not a group key of this view")


@dataclass
class IVMAttempt:
    """Outcome of consulting the IVM manager for one query.

    ``table`` is populated when the maintenance path produced the
    result; when the plan arm chose a re-scan instead, ``table`` is
    ``None`` and the engine executes normally.  Either way the engine
    reports the observed latency back via :meth:`IVMManager.observe` so
    the arm selector learns per query shape.
    """

    view_key: str
    arm: str
    table: Table | None = None
    stats: ExecutionStats | None = None


class IVMManager:
    """Registry of materialized views keyed by crossfilter query shape.

    A view registers on the ``register_after``-th sighting of an
    eligible shape (successive brush positions share one key because the
    brush literals are excluded from it), is bounded by an LRU, and is
    dropped whenever the catalog re-registers or drops its base table.
    All state mutates under one lock — concurrent sessions brushing the
    same view serialize their delta maintenance.
    """

    def __init__(
        self,
        catalog: Catalog,
        metrics: object | None = None,
        config: IVMConfig | None = None,
    ) -> None:
        self._catalog = catalog
        self._metrics = metrics
        self.config = config or IVMConfig()
        self._views: OrderedDict[str, MaterializedView] = OrderedDict()
        self._seen: dict[str, int] = {}
        self._ineligible: dict[str, str] = {}
        self._lock = threading.RLock()
        self._executor = Executor(catalog)
        #: Optional plug-in deciding IVM vs. re-scan per query shape
        #: (duck-typed: ``choose(shape, arms)`` / ``record(shape, arm,
        #: seconds)`` — :class:`repro.core.policy.ArmSelector` fits).
        self.arm_selector: object | None = None
        catalog.add_invalidation_listener(self.invalidate)

    # ------------------------------------------------------------------ #
    def view_count(self) -> int:
        """Number of currently materialized views."""
        with self._lock:
            return len(self._views)

    def attempt(self, plan: LogicalPlan) -> IVMAttempt | None:
        """Try to answer ``plan`` from a maintained view.

        Returns ``None`` when the plan is ineligible or its view is not
        (yet) registered; an :class:`IVMAttempt` carrying the result
        table on a hit; or an attempt with ``table=None`` when the arm
        selector routed this shape to a re-scan.
        """
        template = ivm_template(plan)
        if template is None:
            return None
        if self.config.strict and not self._strict_ok(template):
            return None
        with self._lock:
            key = template.view_key
            if key in self._ineligible:
                return None
            view = self._views.get(key)
            if view is None:
                sightings = self._seen.get(key, 0) + 1
                self._seen[key] = sightings
                if sightings < self.config.register_after:
                    return None
                view = self._build(template)
                if view is None:
                    self._ineligible[key] = template.table_name
                    return None
                self._seen.pop(key, None)
                self._views[key] = view
                while len(self._views) > self.config.max_views:
                    self._views.popitem(last=False)
                self._record_metric("record_ivm_view")
            else:
                self._views.move_to_end(key)
            arm = "ivm"
            if self.arm_selector is not None:
                arm = self.arm_selector.choose(key, ("ivm", "rescan"))
            if arm != "ivm":
                return IVMAttempt(view_key=key, arm=arm)
            try:
                table, stats, delta_rows = self._query(view, template)
            except ReproError:
                # A view that cannot serve its own shape is defective:
                # drop it and let the engine re-scan (same error surface
                # as serial execution, reached through the normal path).
                self._views.pop(key, None)
                self._ineligible[key] = template.table_name
                return None
            self._record_metric(
                "record_ivm_hit",
                delta_rows=delta_rows,
                rows_avoided=max(view.base_rows - delta_rows, 0),
            )
            return IVMAttempt(view_key=key, arm="ivm", table=table, stats=stats)

    def observe(self, attempt: IVMAttempt, seconds: float) -> None:
        """Report the latency of an attempted query back to the arm selector."""
        if self.arm_selector is not None:
            self.arm_selector.record(attempt.view_key, attempt.arm, seconds)

    def invalidate(self, table_name: str) -> None:
        """Drop all views (and shape bookkeeping) of ``table_name``.

        Wired into :meth:`Catalog.add_invalidation_listener`, so a
        re-register or drop of the base table invalidates its views in
        the same breath as the catalog's statistics and zone-map caches.
        """
        with self._lock:
            doomed = [
                key
                for key, view in self._views.items()
                if view.table_name == table_name
            ]
            for key in doomed:
                del self._views[key]
            prefix = f"{table_name}§brush="
            self._seen = {
                key: count
                for key, count in self._seen.items()
                if not key.startswith(prefix)
            }
            self._ineligible = {
                key: table
                for key, table in self._ineligible.items()
                if table != table_name
            }
            if doomed:
                self._record_metric("record_ivm_invalidations", count=len(doomed))

    # ------------------------------------------------------------------ #
    def _build(self, template: IVMTemplate) -> MaterializedView | None:
        try:
            table = self._catalog.get(template.table_name)
            if self.config.strict and self._has_null_keys(template, table):
                return None
            return MaterializedView.build(template, table)
        except ReproError:
            return None

    def _query(
        self, view: MaterializedView, template: IVMTemplate
    ) -> tuple[Table, ExecutionStats, int]:
        delta_rows, fallbacks, fallback_rows = view.maintain(template.interval)
        if fallbacks:
            self._record_metric(
                "record_ivm_fallback", count=fallbacks, rows=fallback_rows
            )
        stats = ExecutionStats()
        stats.rows_scanned = delta_rows + fallback_rows
        stats.rows_grouped = delta_rows
        table = view.materialize()
        stats.groups_formed = table.num_rows
        stats.record(table.num_rows)
        if template.suffix:
            node = MaterializedNode(table=table)
            for suffix_node in reversed(template.suffix):
                node = replace(suffix_node, child=node)
            table = self._executor.execute_subtree(node, stats)
        stats.rows_output = table.num_rows
        return table, stats, delta_rows

    def _record_metric(self, method: str, **kwargs: object) -> None:
        recorder = getattr(self._metrics, method, None)
        if recorder is not None:
            recorder(**kwargs)

    # ------------------------------------------------------------------ #
    # Strict (cross-backend) eligibility
    # ------------------------------------------------------------------ #
    def _strict_ok(self, template: IVMTemplate) -> bool:
        aggregate = template.aggregate
        if not all(isinstance(key, ColumnRef) for key in aggregate.group_by):
            return False
        for item in aggregate.items:
            if not self._strict_item_ok(item, aggregate):
                return False
        if not all(
            _strict_predicate_ok(conjunct) for conjunct in template.static_conjuncts
        ):
            return False
        return self._strict_suffix_ok(template)

    @staticmethod
    def _strict_item_ok(item: SelectItem, aggregate: AggregateNode) -> bool:
        expr = item.expression
        if isinstance(expr, FunctionCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
            if expr.is_star:
                return True
            return isinstance(expr.args[0], (ColumnRef, Literal))
        return isinstance(expr, ColumnRef)

    def _strict_suffix_ok(self, template: IVMTemplate) -> bool:
        """Require an ORDER BY that pins a deterministic total row order.

        Group rows are unique by their keys, so sorting by (exactly a
        permutation of) the group keys fixes one order both engines
        agree on; anything else lets backend-internal order leak out.
        """
        aggregate = template.aggregate
        sorts = [node for node in template.suffix if isinstance(node, SortNode)]
        if not aggregate.group_by:
            return not sorts
        if len(sorts) != 1:
            return False
        key_names = {key.name for key in aggregate.group_by}
        alias_of = {
            item.alias: item.expression.name
            for item in aggregate.items
            if item.alias and isinstance(item.expression, ColumnRef)
        }
        covered: set[str] = set()
        for order_item in sorts[0].keys:
            expr = order_item.expression
            if not isinstance(expr, ColumnRef):
                return False
            name = alias_of.get(expr.name, expr.name)
            if name not in key_names:
                return False
            covered.add(name)
        return covered == key_names

    @staticmethod
    def _has_null_keys(template: IVMTemplate, table: Table) -> bool:
        for key in template.aggregate.group_by:
            if isinstance(key, ColumnRef) and table.has_column(key.name):
                if table.column(key.name).null_mask().any():
                    return True
        return False


def _strict_predicate_ok(expr: Expression) -> bool:
    """Expression grammar whose semantics match SQLite bit-for-bit.

    Comparisons, boolean combinators, arithmetic, BETWEEN, IN and IS
    NULL over columns and literals — the shapes the backend differential
    corpus validates.  Functions, LIKE, CASE and string concatenation
    stay on the re-scan path.
    """
    if isinstance(expr, (Literal, ColumnRef)):
        return True
    if isinstance(expr, IsNull):
        return _strict_predicate_ok(expr.expr)
    if isinstance(expr, Between):
        return all(
            _strict_predicate_ok(e) for e in (expr.expr, expr.low, expr.high)
        )
    if isinstance(expr, InList):
        return _strict_predicate_ok(expr.expr) and all(
            isinstance(value, Literal) for value in expr.values
        )
    if isinstance(expr, UnaryOp):
        return expr.op in ("-", "NOT") and _strict_predicate_ok(expr.operand)
    if isinstance(expr, BinaryOp):
        allowed = {"=", "<>", "<", "<=", ">", ">=", "AND", "OR", "+", "-", "*", "/"}
        return (
            expr.op in allowed
            and _strict_predicate_ok(expr.left)
            and _strict_predicate_ok(expr.right)
        )
    return False
