"""Physical execution of logical plans over columnar tables.

The executor evaluates expressions in a vectorised fashion: every
expression evaluates to a numpy array aligned with the input table's rows.
Boolean results are float arrays holding 0.0/1.0/NaN, implementing SQL's
three-valued logic (NaN = unknown); predicates keep only rows that evaluate
to exactly 1.0.
"""

from __future__ import annotations

import functools
import pickle
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError, StorageError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    OrderItem,
    Star,
    UnaryOp,
    WindowFunction,
    contains_aggregate,
)
from repro.sql.functions import (
    AGGREGATE_KERNELS,
    apply_aggregate,
    apply_aggregate_segments,
    apply_scalar_function,
    is_string_array,
    null_mask,
)
from repro.sql.morsel import MorselPool, ProcessMorselPool, default_process_min_rows
from repro.sql.optimizer import prune_partitions, pruning_conjuncts
from repro.sql.planner import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    LimitNode,
    LogicalPlan,
    MaterializedNode,
    PartitionablePrefix,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    SubqueryNode,
    WindowNode,
    partitionable_prefix,
)
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType, factorize_array, sort_rank_key
from repro.storage.shared import (
    SharedTableDescriptor,
    StaleSegmentError,
    attach_table,
)
from repro.storage.table import PartitionedTable, Table, group_segments


# --------------------------------------------------------------------------- #
# Execution statistics
# --------------------------------------------------------------------------- #


@dataclass
class ExecutionStats:
    """Per-query execution counters used by benchmarks and the optimizer."""

    rows_scanned: int = 0
    rows_output: int = 0
    operators_executed: int = 0
    rows_grouped: int = 0
    groups_formed: int = 0
    rows_sorted: int = 0
    rows_deduplicated: int = 0
    #: Partitioned-execution counters: partitions actually scanned,
    #: partitions skipped by zone-map pruning, and morsel tasks run.
    partitions_scanned: int = 0
    partitions_pruned: int = 0
    morsel_tasks: int = 0
    #: Of the morsel tasks, how many were handed to a worker pool
    #: (thread or process) vs. run inline on the calling thread.
    morsel_tasks_dispatched: int = 0
    morsel_tasks_inline: int = 0
    #: Process-executor transfer accounting: partition bytes served via
    #: the shared-memory segment vs. bytes that crossed the process
    #: boundary pickled (task specs out, partial results back).
    morsel_bytes_shared: int = 0
    morsel_bytes_pickled: int = 0
    #: Process dispatches that fell back to threads mid-query (the
    #: table's shared segment vanished under a concurrent replace/drop).
    morsel_process_fallbacks: int = 0

    def record(self, node_rows: int) -> None:
        """Record one operator execution producing ``node_rows`` rows."""
        self.operators_executed += 1
        self.rows_output = node_rows


# --------------------------------------------------------------------------- #
# Expression evaluation
# --------------------------------------------------------------------------- #


def _broadcast_literal(value: object, n_rows: int) -> np.ndarray:
    if value is None:
        return np.full(n_rows, np.nan, dtype=np.float64)
    if isinstance(value, bool):
        return np.full(n_rows, 1.0 if value else 0.0, dtype=np.float64)
    if isinstance(value, (int, float)):
        return np.full(n_rows, float(value), dtype=np.float64)
    out = np.empty(n_rows, dtype=object)
    out[:] = value
    return out


def _compare_arrays(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Comparison with NULL-propagation, for both numeric and string arrays."""
    n = len(left)
    result = np.full(n, np.nan, dtype=np.float64)
    if is_string_array(left) or is_string_array(right):
        left_obj = left if is_string_array(left) else left.astype(object)
        right_obj = right if is_string_array(right) else right.astype(object)
        for i in range(n):
            lv, rv = left_obj[i], right_obj[i]
            if lv is None or rv is None or _is_nan(lv) or _is_nan(rv):
                continue
            result[i] = 1.0 if _compare_python(op, lv, rv) else 0.0
        return result
    valid = ~(np.isnan(left) | np.isnan(right))
    lv = left[valid]
    rv = right[valid]
    if op == "=":
        cmp = lv == rv
    elif op == "<>":
        cmp = lv != rv
    elif op == "<":
        cmp = lv < rv
    elif op == "<=":
        cmp = lv <= rv
    elif op == ">":
        cmp = lv > rv
    elif op == ">=":
        cmp = lv >= rv
    else:  # pragma: no cover - parser restricts operators
        raise ExecutionError(f"unsupported comparison operator {op!r}")
    result[valid] = cmp.astype(np.float64)
    return result


def _is_nan(value: object) -> bool:
    return isinstance(value, float) and np.isnan(value)


def _compare_python(op: str, left: object, right: object) -> bool:
    left_cmp, right_cmp = left, right
    if isinstance(left, (int, float)) != isinstance(right, (int, float)):
        left_cmp, right_cmp = str(left), str(right)
    if op == "=":
        return left_cmp == right_cmp
    if op == "<>":
        return left_cmp != right_cmp
    if op == "<":
        return left_cmp < right_cmp
    if op == "<=":
        return left_cmp <= right_cmp
    if op == ">":
        return left_cmp > right_cmp
    if op == ">=":
        return left_cmp >= right_cmp
    raise ExecutionError(f"unsupported comparison operator {op!r}")


def _logical_and(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    # Three-valued AND: false dominates, then unknown, then true.
    result = np.full(len(left), np.nan, dtype=np.float64)
    false_mask = (left == 0.0) | (right == 0.0)
    true_mask = (left == 1.0) & (right == 1.0)
    result[false_mask] = 0.0
    result[true_mask] = 1.0
    return result


def _logical_or(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    result = np.full(len(left), np.nan, dtype=np.float64)
    true_mask = (left == 1.0) | (right == 1.0)
    false_mask = (left == 0.0) & (right == 0.0)
    result[true_mask] = 1.0
    result[false_mask] = 0.0
    return result


def _like_to_bool(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    import fnmatch

    n = len(left)
    result = np.full(n, np.nan, dtype=np.float64)
    left_obj = left if is_string_array(left) else left.astype(object)
    right_obj = right if is_string_array(right) else right.astype(object)
    for i in range(n):
        value, pattern = left_obj[i], right_obj[i]
        if value is None or pattern is None:
            continue
        glob = str(pattern).replace("%", "*").replace("_", "?")
        result[i] = 1.0 if fnmatch.fnmatch(str(value), glob) else 0.0
    return result


class ExpressionEvaluator:
    """Vectorised evaluator of expressions against a table.

    ``alias_values`` optionally maps output aliases to already-computed
    arrays, which lets GROUP BY / ORDER BY refer to SELECT-list aliases.
    """

    def __init__(self, table: Table, alias_values: dict[str, np.ndarray] | None = None) -> None:
        self._table = table
        self._aliases = alias_values or {}

    def evaluate(self, expr: Expression) -> np.ndarray:
        """Evaluate ``expr`` to an array aligned with the table's rows."""
        n = self._table.num_rows
        if isinstance(expr, Literal):
            return _broadcast_literal(expr.value, n)
        if isinstance(expr, ColumnRef):
            return self._column_values(expr.name)
        if isinstance(expr, Star):
            raise ExecutionError("'*' is only valid directly in the SELECT list or COUNT(*)")
        if isinstance(expr, UnaryOp):
            return self._evaluate_unary(expr)
        if isinstance(expr, BinaryOp):
            return self._evaluate_binary(expr)
        if isinstance(expr, FunctionCall):
            return self._evaluate_function(expr)
        if isinstance(expr, CaseExpression):
            return self._evaluate_case(expr)
        if isinstance(expr, InList):
            return self._evaluate_in(expr)
        if isinstance(expr, IsNull):
            return self._evaluate_is_null(expr)
        if isinstance(expr, Between):
            return self._evaluate_between(expr)
        if isinstance(expr, WindowFunction):
            raise ExecutionError("window functions must be evaluated by WindowNode")
        raise ExecutionError(f"cannot evaluate expression {expr!r}")

    # -------------------------------------------------------------- #
    def _column_values(self, name: str) -> np.ndarray:
        if self._table.has_column(name):
            return self._table.column(name).values
        if name in self._aliases:
            return self._aliases[name]
        raise ExecutionError(
            f"unknown column {name!r}; available: {self._table.column_names()}"
        )

    def _evaluate_unary(self, expr: UnaryOp) -> np.ndarray:
        operand = self.evaluate(expr.operand)
        if expr.op == "-":
            if is_string_array(operand):
                raise ExecutionError("cannot negate a string expression")
            return -operand
        if expr.op.upper() == "NOT":
            result = np.full(len(operand), np.nan, dtype=np.float64)
            result[operand == 1.0] = 0.0
            result[operand == 0.0] = 1.0
            return result
        raise ExecutionError(f"unsupported unary operator {expr.op!r}")

    def _evaluate_binary(self, expr: BinaryOp) -> np.ndarray:
        op = expr.op.upper()
        left = self.evaluate(expr.left)
        right = self.evaluate(expr.right)
        if op == "AND":
            return _logical_and(left, right)
        if op == "OR":
            return _logical_or(left, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare_arrays(op, left, right)
        if op == "LIKE":
            return _like_to_bool(left, right)
        if op == "||":
            return self._concat(left, right)
        return self._arithmetic(op, left, right)

    @staticmethod
    def _concat(left: np.ndarray, right: np.ndarray) -> np.ndarray:
        n = len(left)
        out = np.empty(n, dtype=object)
        left_obj = left if is_string_array(left) else left.astype(object)
        right_obj = right if is_string_array(right) else right.astype(object)
        for i in range(n):
            lv, rv = left_obj[i], right_obj[i]
            if lv is None or rv is None or _is_nan(lv) or _is_nan(rv):
                out[i] = None
            else:
                out[i] = f"{lv}{rv}"
        return out

    @staticmethod
    def _arithmetic(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        if is_string_array(left) or is_string_array(right):
            raise ExecutionError(f"arithmetic operator {op!r} requires numeric operands")
        with np.errstate(divide="ignore", invalid="ignore"):
            if op == "+":
                result = left + right
            elif op == "-":
                result = left - right
            elif op == "*":
                result = left * right
            elif op == "/":
                result = left / right
                result[np.isinf(result)] = np.nan
            elif op == "%":
                result = np.mod(left, right)
                result[np.isinf(result)] = np.nan
            else:
                raise ExecutionError(f"unsupported binary operator {op!r}")
        return result

    def _evaluate_function(self, expr: FunctionCall) -> np.ndarray:
        name = expr.name.upper()
        if name in AGGREGATE_KERNELS:
            raise ExecutionError(
                f"aggregate function {name} cannot be evaluated per-row; "
                "it must appear in an aggregate query"
            )
        args = [self.evaluate(arg) for arg in expr.args]
        return apply_scalar_function(name, args)

    def _evaluate_case(self, expr: CaseExpression) -> np.ndarray:
        n = self._table.num_rows
        branch_values = [
            (self.evaluate(cond), self.evaluate(value)) for cond, value in expr.whens
        ]
        default = (
            self.evaluate(expr.default)
            if expr.default is not None
            else _broadcast_literal(None, n)
        )
        any_string = is_string_array(default) or any(
            is_string_array(v) for _, v in branch_values
        )
        if any_string:
            out = np.empty(n, dtype=object)
            default_obj = default if is_string_array(default) else default.astype(object)
            out[:] = [None if _is_nan(v) else v for v in default_obj]
            taken = np.zeros(n, dtype=bool)
            for cond, value in branch_values:
                value_obj = value if is_string_array(value) else value.astype(object)
                select = (cond == 1.0) & ~taken
                for i in np.where(select)[0]:
                    v = value_obj[i]
                    out[i] = None if _is_nan(v) else v
                taken |= select
            return out
        out = default.astype(np.float64, copy=True)
        taken = np.zeros(n, dtype=bool)
        for cond, value in branch_values:
            select = (cond == 1.0) & ~taken
            out[select] = value[select]
            taken |= select
        return out

    def _evaluate_in(self, expr: InList) -> np.ndarray:
        values = self.evaluate(expr.expr)
        candidates = [self.evaluate(v) for v in expr.values]
        n = len(values)
        result = np.zeros(n, dtype=np.float64)
        nulls = null_mask(values)
        for candidate in candidates:
            result = np.maximum(result, _compare_arrays("=", values, candidate))
        result = np.where(nulls, np.nan, result)
        if expr.negated:
            flipped = np.full(n, np.nan, dtype=np.float64)
            flipped[result == 1.0] = 0.0
            flipped[result == 0.0] = 1.0
            return flipped
        return result

    def _evaluate_is_null(self, expr: IsNull) -> np.ndarray:
        values = self.evaluate(expr.expr)
        mask = null_mask(values)
        if expr.negated:
            return (~mask).astype(np.float64)
        return mask.astype(np.float64)

    def _evaluate_between(self, expr: Between) -> np.ndarray:
        value = self.evaluate(expr.expr)
        low = self.evaluate(expr.low)
        high = self.evaluate(expr.high)
        ge = _compare_arrays(">=", value, low)
        le = _compare_arrays("<=", value, high)
        result = _logical_and(ge, le)
        if expr.negated:
            flipped = np.full(len(result), np.nan, dtype=np.float64)
            flipped[result == 1.0] = 0.0
            flipped[result == 0.0] = 1.0
            return flipped
        return result


def _array_to_column(name: str, values: np.ndarray) -> Column:
    if is_string_array(values):
        return Column(name, values, ColumnType.STRING)
    return Column(name, values.astype(np.float64, copy=False), ColumnType.NUMERIC)


# --------------------------------------------------------------------------- #
# Plan execution
# --------------------------------------------------------------------------- #


class Executor:
    """Executes logical plans against a :class:`Catalog`.

    Plans over a :class:`~repro.storage.table.PartitionedTable` execute
    their ``Scan → Filter → Project`` prefix (plus partial aggregation
    and per-partition DISTINCT) morsel-style: zone maps prune partitions
    the pushed-down predicates provably cannot match, the surviving
    partitions run on the shared :class:`MorselPool`, and the merge steps
    are row-identical to serial execution by construction (partitions are
    contiguous row ranges, so concatenation in partition order reproduces
    the serial operator output exactly).
    """

    def __init__(
        self,
        catalog: Catalog,
        pool: MorselPool | None = None,
        process_pool: ProcessMorselPool | None = None,
        process_min_rows: int | None = None,
    ) -> None:
        self._catalog = catalog
        self._pool = pool if pool is not None else MorselPool(1)
        self._process_pool = process_pool
        self._process_min_rows = (
            default_process_min_rows()
            if process_min_rows is None
            else max(0, int(process_min_rows))
        )

    def execute(self, plan: LogicalPlan) -> tuple[Table, ExecutionStats]:
        """Execute ``plan`` and return the result table plus statistics."""
        stats = ExecutionStats()
        table = self._execute_node(plan.root, stats)
        stats.rows_output = table.num_rows
        return table, stats

    def execute_subtree(self, node: PlanNode, stats: ExecutionStats) -> Table:
        """Execute a plan subtree, accumulating into an existing ``stats``.

        The IVM maintenance path uses this to replay a plan's suffix
        operators (HAVING / DISTINCT / ORDER BY / LIMIT) over a
        :class:`~repro.sql.planner.MaterializedNode` carrying the
        incrementally maintained aggregate rows.
        """
        return self._execute_node(node, stats)

    # -------------------------------------------------------------- #
    def _execute_node(self, node: PlanNode, stats: ExecutionStats) -> Table:
        partitioned = self._try_partitioned(node, stats)
        if partitioned is not None:
            return partitioned
        if isinstance(node, MaterializedNode):
            table: Table = node.table
            stats.record(table.num_rows)
            return table
        if isinstance(node, ScanNode):
            table = self._catalog.get(node.table_name)
            stats.rows_scanned += table.num_rows
            stats.record(table.num_rows)
            return table
        if isinstance(node, SubqueryNode):
            table = self._execute_node(node.plan, stats)
            stats.record(table.num_rows)
            return table
        if isinstance(node, FilterNode):
            return self._execute_filter(node, stats)
        if isinstance(node, ProjectNode):
            return self._execute_project(node, stats)
        if isinstance(node, AggregateNode):
            return self._execute_aggregate(node, stats)
        if isinstance(node, WindowNode):
            return self._execute_window(node, stats)
        if isinstance(node, SortNode):
            return self._execute_sort(node, stats)
        if isinstance(node, LimitNode):
            return self._execute_limit(node, stats)
        if isinstance(node, DistinctNode):
            return self._execute_distinct(node, stats)
        raise ExecutionError(f"unsupported plan node {type(node).__name__}")

    def _execute_filter(self, node: FilterNode, stats: ExecutionStats) -> Table:
        table = self._execute_node(node.child, stats)
        result = self._apply_filter(node, table)
        stats.record(result.num_rows)
        return result

    @staticmethod
    def _apply_filter(node: FilterNode, table: Table) -> Table:
        """Row-local filter application (shared by serial and morsel paths)."""
        evaluator = ExpressionEvaluator(table)
        mask_values = evaluator.evaluate(node.predicate)
        return table.filter(mask_values == 1.0)

    def _execute_project(self, node: ProjectNode, stats: ExecutionStats) -> Table:
        table = self._execute_node(node.child, stats)
        result = self._apply_project(node, table)
        stats.record(result.num_rows)
        return result

    @staticmethod
    def _apply_project(node: ProjectNode, table: Table) -> Table:
        """Row-local projection (shared by serial and morsel paths)."""
        evaluator = ExpressionEvaluator(table)
        columns: list[Column] = []
        used_names: set[str] = set()
        # Columns WindowNode materialised for this projection's explicit
        # window items: ``*`` must not expand them (they are not source
        # columns), or ``SELECT *, SUM(x) OVER (...) AS y`` would emit
        # ``y`` twice.
        window_names = {
            item.output_name(index)
            for index, item in enumerate(node.items)
            if isinstance(item.expression, WindowFunction)
        }
        for index, item in enumerate(node.items):
            if isinstance(item.expression, Star):
                for col in table.columns():
                    if col.name not in used_names and col.name not in window_names:
                        columns.append(col)
                        used_names.add(col.name)
                continue
            name = item.output_name(index)
            if isinstance(item.expression, WindowFunction):
                # Window columns were already materialised by WindowNode
                # under the item's output name.
                values = table.column(name).values
            else:
                values = evaluator.evaluate(item.expression)
            if name in used_names:
                name = f"{name}_{index}"
            columns.append(_array_to_column(name, values))
            used_names.add(name)
        return Table(columns, name=table.name)

    def _execute_aggregate(self, node: AggregateNode, stats: ExecutionStats) -> Table:
        table = self._execute_node(node.child, stats)
        return self._aggregate_table(node, table, stats)

    def _aggregate_table(
        self, node: AggregateNode, table: Table, stats: ExecutionStats
    ) -> Table:
        """Serial aggregation of an already-materialised input table."""
        evaluator = ExpressionEvaluator(table)

        # Pre-compute SELECT-item expressions that group-by keys may alias.
        alias_arrays: dict[str, np.ndarray] = {}
        for index, item in enumerate(node.items):
            if item.alias and not contains_aggregate(item.expression) and not isinstance(
                item.expression, (Star, WindowFunction)
            ):
                try:
                    alias_arrays[item.alias] = evaluator.evaluate(item.expression)
                except ExecutionError:
                    continue
        evaluator = ExpressionEvaluator(table, alias_values=alias_arrays)

        group_arrays = [evaluator.evaluate(expr) for expr in node.group_by]
        n = table.num_rows

        if group_arrays:
            codes = [factorize_array(arr)[0] for arr in group_arrays]
            order, starts, ends = group_segments(codes, n)
        else:
            order, starts, ends = group_segments([], n)
        stats.rows_grouped += n
        stats.groups_formed += len(starts)

        columns = [
            Column.from_values(
                item.output_name(index),
                self._evaluate_aggregate_expression(
                    item.expression, evaluator, order, starts, ends
                ),
            )
            for index, item in enumerate(node.items)
        ]
        result = Table(columns, name=table.name)
        stats.record(result.num_rows)
        return result

    @staticmethod
    def _group_rows(group_arrays: list[np.ndarray], n: int) -> list[np.ndarray]:
        """Row-index arrays of each group, in deterministic key order."""
        return group_rows_vectorized(group_arrays, n)

    def _evaluate_aggregate_expression(
        self,
        expr: Expression,
        evaluator: ExpressionEvaluator,
        order: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
    ) -> list[object]:
        """Evaluate one SELECT item to a value per group segment.

        Aggregate arguments are evaluated once over the whole input table
        and reduced per segment of the group-sorted row ``order``; scalar
        combinations recurse and merge the per-group lists.
        """
        n_groups = len(starts)
        if isinstance(expr, FunctionCall) and expr.name.upper() in AGGREGATE_KERNELS:
            if expr.is_star:
                return np.asarray(ends - starts, dtype=np.float64).tolist()
            if not expr.args:
                raise ExecutionError(f"aggregate {expr.name} requires an argument")
            values = evaluator.evaluate(expr.args[0])
            return apply_aggregate_segments(
                expr.name, values[order], starts, ends, expr.distinct
            )
        if isinstance(expr, BinaryOp):
            left = self._evaluate_aggregate_expression(expr.left, evaluator, order, starts, ends)
            right = self._evaluate_aggregate_expression(expr.right, evaluator, order, starts, ends)
            return [_combine_scalar(expr.op, lv, rv) for lv, rv in zip(left, right)]
        if isinstance(expr, UnaryOp) and expr.op == "-":
            inner = self._evaluate_aggregate_expression(expr.operand, evaluator, order, starts, ends)
            return [None if value is None else -float(value) for value in inner]
        if isinstance(expr, Literal):
            return [expr.value] * n_groups
        # Non-aggregate expression inside a group: all rows of a group share
        # the value, so evaluate once and fancy-index each group's first
        # row (``order[starts]``) in one take — no per-group Python loop.
        values = evaluator.evaluate(expr)
        empty = starts == ends  # possible only for a global aggregate over 0 rows
        firsts = np.where(empty, 0, order[np.minimum(starts, len(order) - 1)] if len(order) else 0)
        if is_string_array(values):
            taken = values[firsts] if len(values) else np.full(n_groups, None, dtype=object)
            return [None if flag else value for flag, value in zip(empty, taken)]
        taken = (
            values[firsts].astype(np.float64)
            if len(values)
            else np.full(n_groups, np.nan)
        )
        nulls = empty | np.isnan(taken)
        return [None if flag else float(value) for flag, value in zip(nulls, taken)]

    def _execute_window(self, node: WindowNode, stats: ExecutionStats) -> Table:
        table = self._execute_node(node.child, stats)
        result = table
        for output_name, window in node.windows:
            values = self._evaluate_window(window, result)
            result = result.with_column(_array_to_column(output_name, values))
        stats.record(result.num_rows)
        return result

    def _evaluate_window(self, window: WindowFunction, table: Table) -> np.ndarray:
        evaluator = ExpressionEvaluator(table)
        n = table.num_rows
        partition_arrays = [evaluator.evaluate(e) for e in window.partition_by]
        if partition_arrays:
            partitions = self._group_rows(partition_arrays, n)
        else:
            partitions = [np.arange(n)]

        order_keys = window.order_by
        func = window.function
        name = func.name.upper()
        out = np.full(n, np.nan, dtype=np.float64)

        for indices in partitions:
            subset = table.take(indices)
            sub_eval = ExpressionEvaluator(subset)
            if order_keys:
                sort_order = _sort_indices(sub_eval, subset, order_keys)
            else:
                sort_order = np.arange(len(indices))
            ordered_global = indices[sort_order]

            if name == "ROW_NUMBER":
                out[ordered_global] = np.arange(1, len(indices) + 1, dtype=np.float64)
                continue
            if name == "RANK":
                out[ordered_global] = self._rank_values(sub_eval, subset, order_keys, sort_order)
                continue

            if func.is_star:
                arg_values = np.ones(len(indices), dtype=np.float64)
            elif func.args:
                arg_values = sub_eval.evaluate(func.args[0])
            else:
                raise ExecutionError(f"window function {name} requires an argument")
            if is_string_array(arg_values):
                raise ExecutionError(f"window function {name} requires numeric input")
            ordered_values = arg_values[sort_order]

            if order_keys:
                # Running (cumulative) aggregate in frame ROWS UNBOUNDED PRECEDING.
                filled = np.where(np.isnan(ordered_values), 0.0, ordered_values)
                if name == "SUM":
                    cumulative = np.cumsum(filled)
                elif name == "COUNT":
                    cumulative = np.cumsum((~np.isnan(ordered_values)).astype(np.float64))
                elif name == "AVG":
                    counts = np.cumsum((~np.isnan(ordered_values)).astype(np.float64))
                    counts[counts == 0.0] = np.nan
                    cumulative = np.cumsum(filled) / counts
                elif name == "MIN":
                    cumulative = np.minimum.accumulate(
                        np.where(np.isnan(ordered_values), np.inf, ordered_values)
                    )
                    cumulative[np.isinf(cumulative)] = np.nan
                elif name == "MAX":
                    cumulative = np.maximum.accumulate(
                        np.where(np.isnan(ordered_values), -np.inf, ordered_values)
                    )
                    cumulative[np.isinf(cumulative)] = np.nan
                else:
                    raise ExecutionError(f"unsupported window function {name}")
                out[ordered_global] = cumulative
            else:
                total = apply_aggregate(name, ordered_values)
                out[ordered_global] = np.nan if total is None else float(total)
        return out

    @staticmethod
    def _rank_values(
        evaluator: ExpressionEvaluator,
        subset: Table,
        order_keys: tuple[OrderItem, ...],
        sort_order: np.ndarray,
    ) -> np.ndarray:
        if not order_keys:
            return np.ones(len(sort_order), dtype=np.float64)
        key_arrays = [evaluator.evaluate(k.expression) for k in order_keys]
        ranks = np.empty(len(sort_order), dtype=np.float64)
        previous_key: tuple | None = None
        current_rank = 0
        for position, idx in enumerate(sort_order):
            key = tuple(
                arr[idx] if is_string_array(arr) else float(arr[idx])
                for arr in key_arrays
            )
            if key != previous_key:
                current_rank = position + 1
                previous_key = key
            ranks[position] = current_rank
        return ranks

    def _execute_sort(self, node: SortNode, stats: ExecutionStats) -> Table:
        table = self._execute_node(node.child, stats)
        evaluator = ExpressionEvaluator(table)
        order = _sort_indices(evaluator, table, node.keys)
        result = table.take(order)
        stats.rows_sorted += table.num_rows
        stats.record(result.num_rows)
        return result

    def _execute_limit(self, node: LimitNode, stats: ExecutionStats) -> Table:
        table = self._execute_node(node.child, stats)
        offset = node.offset or 0
        result = table.slice(offset, node.limit)
        stats.record(result.num_rows)
        return result

    def _execute_distinct(self, node: DistinctNode, stats: ExecutionStats) -> Table:
        table = self._execute_node(node.child, stats)
        stats.rows_deduplicated += table.num_rows
        result = table.take(table.distinct_indices())
        stats.record(result.num_rows)
        return result

    # -------------------------------------------------------------- #
    # Morsel-parallel partitioned execution
    # -------------------------------------------------------------- #
    def _try_partitioned(self, node: PlanNode, stats: ExecutionStats) -> Table | None:
        """Execute ``node`` partition-parallel when its shape allows it.

        Returns ``None`` (caller falls through to serial execution) when
        the node is not rooted in a partitionable prefix over a
        :class:`PartitionedTable` with more than one partition.
        """
        if isinstance(node, AggregateNode):
            prefix = partitionable_prefix(node.child)
            table = self._prefix_table(prefix)
            if table is None:
                return None
            return self._morsel_aggregate(node, prefix, table, stats)
        if isinstance(node, DistinctNode):
            prefix = partitionable_prefix(node.child)
            table = self._prefix_table(prefix)
            if table is None:
                return None
            return self._morsel_distinct(node, prefix, table, stats)
        if isinstance(node, (FilterNode, ProjectNode, SubqueryNode)):
            prefix = partitionable_prefix(node)
            if prefix is None or not prefix.nodes:
                return None
            table = self._prefix_table(prefix)
            if table is None:
                return None
            kept, parts = self._morsel_partitions(prefix, table, stats)
            results = self._map_morsels(
                prefix,
                table,
                kept,
                parts,
                MORSEL_CHAIN,
                None,
                stats,
                lambda part: self._run_chain(prefix, part),
            )
            merged = Table.concat_all(results)
            self._record_chain(prefix, merged.num_rows, stats)
            return merged
        return None

    def _prefix_table(self, prefix: PartitionablePrefix | None) -> PartitionedTable | None:
        """The prefix's base table, when it is usefully partitioned."""
        if prefix is None or not self._catalog.has(prefix.scan.table_name):
            return None
        table = self._catalog.get(prefix.scan.table_name)
        if isinstance(table, PartitionedTable) and table.num_partitions > 1:
            return table
        return None

    def _morsel_partitions(
        self, prefix: PartitionablePrefix, table: PartitionedTable, stats: ExecutionStats
    ) -> tuple[list[int], list[Table]]:
        """Partition indices + views surviving zone-map pruning.

        Pruning intersects the prefix's scan-adjacent predicates with the
        catalog's per-partition zone maps; a pruned partition provably
        holds no satisfying row, so skipping it cannot change results.
        When everything is pruned a single zero-row view stands in (with
        no index — such a morsel set never dispatches to processes), so
        downstream merges keep the correct schema.
        """
        conjuncts = []
        for predicate in prefix.scan_filters:
            conjuncts.extend(pruning_conjuncts(predicate))
        total = table.num_partitions
        if conjuncts:
            zone_maps = self._catalog.zone_maps(prefix.scan.table_name)
            kept = prune_partitions(zone_maps, conjuncts) if zone_maps else list(range(total))
        else:
            kept = list(range(total))
        stats.partitions_scanned += len(kept)
        stats.partitions_pruned += total - len(kept)
        parts = [table.partition(index) for index in kept]
        stats.rows_scanned += sum(part.num_rows for part in parts)
        if not parts:
            parts = [table.slice(0, 0)]
        stats.morsel_tasks += len(parts)
        return kept, parts

    def _run_chain(self, prefix: PartitionablePrefix, table: Table) -> Table:
        """Apply the prefix's row-local operators to one partition."""
        return apply_prefix_chain(prefix.nodes, table)

    # -------------------------------------------------------------- #
    # Process dispatch
    # -------------------------------------------------------------- #
    def _map_morsels(
        self,
        prefix: PartitionablePrefix,
        table: PartitionedTable,
        kept: list[int],
        parts: list[Table],
        mode: str,
        node: AggregateNode | None,
        stats: ExecutionStats,
        local_task,
    ) -> list:
        """Run one task per surviving partition on the best available pool.

        Tries the process pool first (shared-memory descriptors, compact
        picklable task specs); any ineligibility — no pool, table below
        the size floor, a single surviving partition, an unexportable
        plan fragment, or a segment yanked by a concurrent replace/drop —
        falls back to the thread pool running ``local_task``, which is
        row-identical by construction (both paths execute the same
        row-local chain over the same partition views).
        """
        results = self._map_morsels_process(prefix, table, kept, parts, mode, node, stats)
        if results is not None:
            return results
        use_threads = _worth_threading(parts)
        if use_threads and self._pool.parallel and len(parts) > 1:
            stats.morsel_tasks_dispatched += len(parts)
        else:
            stats.morsel_tasks_inline += len(parts)
        return self._pool.map(local_task, parts, parallel=use_threads)

    def _map_morsels_process(
        self,
        prefix: PartitionablePrefix,
        table: PartitionedTable,
        kept: list[int],
        parts: list[Table],
        mode: str,
        node: AggregateNode | None,
        stats: ExecutionStats,
    ) -> list | None:
        """Process-pool leg of :meth:`_map_morsels` (``None`` = not taken)."""
        pool = self._process_pool
        if pool is None or len(kept) <= 1 or len(kept) != len(parts):
            return None
        if table.num_rows < self._process_min_rows:
            return None
        try:
            handle = self._catalog.shared_handle(table.name)
        except StorageError:
            handle = None
        if handle is None:
            return None
        spec = MorselTaskSpec(
            descriptor=handle.descriptor,
            prefix_nodes=prefix.nodes,
            mode=mode,
            node=node,
        )
        try:
            spec_bytes = len(pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            # A plan fragment that refuses to pickle (shouldn't happen —
            # all AST/plan nodes are plain dataclasses) keeps the thread
            # path as a safety net rather than failing the query.
            return None
        try:
            results = pool.map(functools.partial(run_morsel_task, spec), kept)
        except StaleSegmentError:
            stats.morsel_process_fallbacks += 1
            return None
        stats.morsel_tasks_dispatched += len(kept)
        stats.morsel_bytes_shared += sum(part.nbytes() for part in parts)
        stats.morsel_bytes_pickled += spec_bytes * len(kept) + sum(
            _result_nbytes(result) for result in results
        )
        return results

    def _record_chain(
        self, prefix: PartitionablePrefix, rows: int, stats: ExecutionStats
    ) -> None:
        """Account the chain's operators (scan + chain nodes) once each."""
        for _ in range(len(prefix.nodes) + 1):
            stats.record(rows)

    def _morsel_distinct(
        self,
        node: DistinctNode,
        prefix: PartitionablePrefix,
        table: PartitionedTable,
        stats: ExecutionStats,
    ) -> Table:
        """Per-partition DISTINCT, then a global DISTINCT over the merge.

        Correct because ``distinct(concat(distinct(p_i))) ==
        distinct(concat(p_i))`` and first-occurrence order survives: each
        partition keeps its first occurrences in row order, partitions
        concatenate in row order, and the final pass keeps the global
        first of each duplicate set.
        """
        kept, parts = self._morsel_partitions(prefix, table, stats)

        def task(part: Table) -> tuple[int, Table]:
            chained = self._run_chain(prefix, part)
            return chained.num_rows, chained.take(chained.distinct_indices())

        results = self._map_morsels(
            prefix, table, kept, parts, MORSEL_DISTINCT, None, stats, task
        )
        stats.rows_deduplicated += sum(rows for rows, _ in results)
        merged = Table.concat_all([deduped for _, deduped in results])
        self._record_chain(prefix, merged.num_rows, stats)
        result = merged.take(merged.distinct_indices())
        stats.record(result.num_rows)
        return result

    def _morsel_aggregate(
        self,
        node: AggregateNode,
        prefix: PartitionablePrefix,
        table: PartitionedTable,
        stats: ExecutionStats,
    ) -> Table:
        """Partition-parallel aggregation with a partial-state merge.

        Decomposable aggregates (COUNT/SUM/MIN/MAX, AVG as sum+count)
        compute per-partition partial states with the same ``reduceat``
        kernels the serial path uses, then merge by re-grouping the
        partials on the raw key values and combining states (counts and
        sums add, mins/maxes reduce again).  Queries with aggregates that
        have no mergeable partial state (MEDIAN, STDDEV, VARIANCE,
        DISTINCT aggregates) still parallelise the scan/filter/project
        prefix and aggregate the merged rows serially.
        """
        specs = _decompose_aggregate_items(node)
        kept, parts = self._morsel_partitions(prefix, table, stats)
        if specs is None:
            results = self._map_morsels(
                prefix,
                table,
                kept,
                parts,
                MORSEL_CHAIN,
                None,
                stats,
                lambda part: self._run_chain(prefix, part),
            )
            merged = Table.concat_all(results)
            self._record_chain(prefix, merged.num_rows, stats)
            return self._aggregate_table(node, merged, stats)
        agg_specs, first_specs = specs

        def task(part: Table) -> tuple[int, Table]:
            chained = self._run_chain(prefix, part)
            return chained.num_rows, _aggregate_partials(
                node, chained, agg_specs, first_specs
            )

        partials = self._map_morsels(
            prefix, table, kept, parts, MORSEL_PARTIAL, node, stats, task
        )
        stats.rows_grouped += sum(rows for rows, _ in partials)
        self._record_chain(prefix, sum(rows for rows, _ in partials), stats)
        merged = Table.concat_all([partial for _, partial in partials])
        result = _merge_aggregate_partials(node, merged, agg_specs, first_specs)
        stats.groups_formed += result.num_rows
        stats.record(result.num_rows)
        return result


# --------------------------------------------------------------------------- #
# Group-by / order-by / distinct kernels
#
# The vectorized kernels are the production path; the *_reference variants
# retain the naive row-at-a-time implementations and exist solely so the
# property-based differential tests can check the kernels against them.
# Both paths share one deterministic ordering: numbers < strings < NULL
# (``sort_rank_key``), with ORDER BY treating NULL as the largest value
# (last under ASC, first under DESC — PostgreSQL semantics).
# --------------------------------------------------------------------------- #


def _normalise_group_value(value: object) -> object:
    """NULL-normalise one grouping value (NaN and None collapse to None)."""
    if value is None:
        return None
    if isinstance(value, (float, np.floating)) and np.isnan(value):
        return None
    return value


def group_rows_vectorized(group_arrays: Sequence[np.ndarray], n: int) -> list[np.ndarray]:
    """Vectorized grouping: factorized codes + one lexsort over the codes.

    Returns each group's row indices (ascending within a group) with the
    groups themselves in deterministic key order.
    """
    codes = [factorize_array(arr)[0] for arr in group_arrays]
    order, starts, ends = group_segments(codes, n)
    return [order[start:end] for start, end in zip(starts, ends)]


def group_rows_reference(group_arrays: Sequence[np.ndarray], n: int) -> list[np.ndarray]:
    """Naive reference grouping: a dict of normalised key tuples."""
    normalised: list[list[object]] = []
    for arr in group_arrays:
        if is_string_array(arr):
            normalised.append([_normalise_group_value(v) for v in arr])
        else:
            normalised.append([None if np.isnan(v) else float(v) for v in arr])
    keys: dict[tuple, list[int]] = {}
    for i in range(n):
        key = tuple(col[i] for col in normalised)
        keys.setdefault(key, []).append(i)
    ordered = sorted(keys.items(), key=lambda kv: _group_sort_key(kv[0]))
    return [np.array(indices, dtype=np.int64) for _, indices in ordered]


def sort_indices_vectorized(
    key_arrays: Sequence[np.ndarray], descending: Sequence[bool], n: int
) -> np.ndarray:
    """Stable multi-key sort via one ``np.lexsort`` over factorized codes.

    Factorized codes already order uniques by the deterministic rank with
    NULL largest, so DESC simply negates the codes (putting NULLs first).
    """
    if not key_arrays:
        return np.arange(n, dtype=np.int64)
    lex_keys = []
    for values, desc in zip(key_arrays, descending):
        codes, _uniques = factorize_array(values)
        lex_keys.append(-codes if desc else codes)
    return np.lexsort(tuple(reversed(lex_keys))).astype(np.int64)


def sort_indices_reference(
    key_arrays: Sequence[np.ndarray], descending: Sequence[bool], n: int
) -> np.ndarray:
    """Naive reference sort: repeated stable Python sorts, least key first."""
    indices = list(range(n))
    for values, desc in reversed(list(zip(key_arrays, descending))):
        indices.sort(
            key=lambda i: sort_rank_key(_normalise_group_value(values[i])),
            reverse=desc,
        )
    return np.array(indices, dtype=np.int64)


def distinct_indices_reference(table: Table) -> np.ndarray:
    """Naive reference DISTINCT: first occurrence of each materialised row."""
    seen: set[tuple] = set()
    keep: list[int] = []
    for index, row in enumerate(table.to_rows()):
        key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
        if key not in seen:
            seen.add(key)
            keep.append(index)
    return np.array(keep, dtype=np.int64)


def _group_sort_key(key: tuple) -> tuple:
    """Deterministic ordering of group keys with mixed types and NULLs."""
    return tuple(sort_rank_key(value) for value in key)


def _sort_indices(
    evaluator: ExpressionEvaluator, table: Table, keys: tuple[OrderItem, ...]
) -> np.ndarray:
    """Stable multi-key sort returning row indices."""
    key_arrays = [evaluator.evaluate(key.expression) for key in keys]
    descending = [key.descending for key in keys]
    return sort_indices_vectorized(key_arrays, descending, table.num_rows)


# --------------------------------------------------------------------------- #
# Partial aggregation (morsel-parallel GROUP BY)
#
# A decomposable aggregate has a per-partition partial state that merges
# into the exact global value: COUNT and SUM add, MIN and MAX reduce
# again, AVG carries (sum, count).  The partial tables use reserved
# ``__key_i`` / ``__agg_j`` / ``__first_j`` columns; the merge re-groups
# them on the raw key values with the same factorize + lexsort kernels
# the serial path uses, so merged groups come out in the identical
# deterministic order (numbers < strings < NULL).
# --------------------------------------------------------------------------- #

#: Aggregates with a mergeable partial state.
DECOMPOSABLE_AGGREGATES = frozenset({"COUNT", "SUM", "MIN", "MAX", "AVG"})

#: Minimum average rows per morsel before a thread handoff pays for
#: itself; smaller morsel sets run inline on the calling thread (the
#: pruning benefit is identical either way).
MORSEL_PARALLEL_MIN_TASK_ROWS = 8192


def _worth_threading(parts: Sequence[Table]) -> bool:
    """Whether a morsel set is big enough to amortise thread dispatch."""
    if len(parts) <= 1:
        return False
    total = sum(part.num_rows for part in parts)
    return total / len(parts) >= MORSEL_PARALLEL_MIN_TASK_ROWS


# --------------------------------------------------------------------------- #
# Process-parallel morsel tasks
#
# The wire format of process dispatch: one MorselTaskSpec per query
# (shared-memory descriptor + row-local plan prefix + merge mode), one
# partition *index* per task.  Workers attach to the table's segment
# once per process and run the identical row-local code the thread path
# runs, so results merge through the same serial-identical contract.
# --------------------------------------------------------------------------- #

#: Task modes: return the chained partition rows, the partition's local
#: DISTINCT, or the partition's partial-aggregate state table.
MORSEL_CHAIN = "chain"
MORSEL_DISTINCT = "distinct"
MORSEL_PARTIAL = "partial"


@dataclass(frozen=True)
class MorselTaskSpec:
    """Compact picklable description of one query's morsel tasks.

    ``prefix_nodes`` is the row-local ``Filter|Project|Subquery`` chain
    (top-down, as in :class:`~repro.sql.planner.PartitionablePrefix`);
    ``node`` carries the :class:`~repro.sql.planner.AggregateNode` for
    ``MORSEL_PARTIAL`` tasks — the worker re-derives the aggregate
    decomposition from it, which is deterministic, rather than shipping
    evaluated spec objects.
    """

    descriptor: SharedTableDescriptor
    prefix_nodes: tuple[PlanNode, ...]
    mode: str
    node: AggregateNode | None = None


def apply_prefix_chain(nodes: Sequence[PlanNode], table: Table) -> Table:
    """Apply a row-local operator chain (top-down order) to one partition."""
    current = table
    for chain_node in reversed(list(nodes)):
        if isinstance(chain_node, FilterNode):
            current = Executor._apply_filter(chain_node, current)
        elif isinstance(chain_node, ProjectNode):
            current = Executor._apply_project(chain_node, current)
        # SubqueryNode is the identity on rows.
    return current


def run_morsel_task(spec: MorselTaskSpec, index: int):
    """Execute one morsel in a worker process.

    Attaches to the table's shared segment (cached per process), takes
    the zero-copy view of partition ``index``, runs the row-local chain,
    and returns the mode's merge input — exactly what the thread path's
    closures return, so the parent-side merge code is shared verbatim.
    """
    table = attach_table(spec.descriptor)
    chained = apply_prefix_chain(spec.prefix_nodes, table.partition(index))
    if spec.mode == MORSEL_CHAIN:
        return chained
    if spec.mode == MORSEL_DISTINCT:
        return chained.num_rows, chained.take(chained.distinct_indices())
    if spec.mode == MORSEL_PARTIAL:
        specs = _decompose_aggregate_items(spec.node)
        if specs is None:  # pragma: no cover - parent checked the same node
            raise ExecutionError("aggregate is not decomposable in worker")
        agg_specs, first_specs = specs
        return chained.num_rows, _aggregate_partials(
            spec.node, chained, agg_specs, first_specs
        )
    raise ExecutionError(f"unknown morsel task mode {spec.mode!r}")


def _result_nbytes(result: object) -> int:
    """Approximate pickled-result size for the transfer accounting."""
    if isinstance(result, Table):
        return result.nbytes()
    if isinstance(result, tuple) and len(result) == 2 and isinstance(result[1], Table):
        return result[1].nbytes()
    return 0


def _collect_item_parts(
    expr: Expression,
    aggregates: dict[str, FunctionCall],
    firsts: dict[str, Expression],
) -> bool:
    """Split one SELECT item into aggregate calls and group-shared parts.

    Mirrors the recursion :meth:`Executor._evaluate_aggregate_expression`
    supports; returns ``False`` when any aggregate lacks a mergeable
    partial state (the caller then falls back to a serial merge).
    """
    if isinstance(expr, FunctionCall) and expr.name.upper() in AGGREGATE_KERNELS:
        if expr.distinct or expr.name.upper() not in DECOMPOSABLE_AGGREGATES:
            return False
        if not expr.is_star and not expr.args:
            return False
        aggregates[str(expr)] = expr
        return True
    if isinstance(expr, BinaryOp):
        return _collect_item_parts(expr.left, aggregates, firsts) and _collect_item_parts(
            expr.right, aggregates, firsts
        )
    if isinstance(expr, UnaryOp) and expr.op == "-":
        return _collect_item_parts(expr.operand, aggregates, firsts)
    if isinstance(expr, Literal):
        return True
    if contains_aggregate(expr) or isinstance(expr, (Star, WindowFunction)):
        return False
    firsts[str(expr)] = expr
    return True


def _decompose_aggregate_items(
    node: AggregateNode,
) -> tuple[list[tuple[str, FunctionCall]], list[tuple[str, Expression]]] | None:
    """All aggregate/first-value parts of the node's items, or ``None``."""
    aggregates: dict[str, FunctionCall] = {}
    firsts: dict[str, Expression] = {}
    for item in node.items:
        if not _collect_item_parts(item.expression, aggregates, firsts):
            return None
    return list(aggregates.items()), list(firsts.items())


def _segment_firsts(values: np.ndarray, order: np.ndarray, starts, ends) -> list[object]:
    """First value of every group segment (``None`` for empty segments)."""
    return [
        values[order[start]] if start < end else None
        for start, end in zip(starts, ends)
    ]


def _aggregate_partials(
    node: AggregateNode,
    table: Table,
    agg_specs: list[tuple[str, FunctionCall]],
    first_specs: list[tuple[str, Expression]],
) -> Table:
    """One partition's partial-aggregation state table.

    One row per local group, holding the raw group-key values, each
    aggregate's partial state, and the group's first value of every
    group-shared expression.
    """
    evaluator = ExpressionEvaluator(table)
    alias_arrays: dict[str, np.ndarray] = {}
    for item in node.items:
        if item.alias and not contains_aggregate(item.expression) and not isinstance(
            item.expression, (Star, WindowFunction)
        ):
            try:
                alias_arrays[item.alias] = evaluator.evaluate(item.expression)
            except ExecutionError:
                continue
    evaluator = ExpressionEvaluator(table, alias_values=alias_arrays)

    group_arrays = [evaluator.evaluate(expr) for expr in node.group_by]
    n = table.num_rows
    if group_arrays:
        codes = [factorize_array(arr)[0] for arr in group_arrays]
        order, starts, ends = group_segments(codes, n)
    else:
        order, starts, ends = group_segments([], n)

    columns: list[Column] = []
    for index, arr in enumerate(group_arrays):
        columns.append(
            Column.from_values(f"__key_{index}", _segment_firsts(arr, order, starts, ends))
        )
    for index, (_key, call) in enumerate(agg_specs):
        name = call.name.upper()
        if call.is_star:
            sizes = [float(end - start) for start, end in zip(starts, ends)]
            columns.append(Column.from_values(f"__agg_{index}", sizes))
            continue
        values = evaluator.evaluate(call.args[0])
        ordered = values[order]
        if name == "AVG":
            columns.append(
                Column.from_values(
                    f"__agg_{index}",
                    apply_aggregate_segments("SUM", ordered, starts, ends),
                )
            )
            columns.append(
                Column.from_values(
                    f"__agg_{index}_count",
                    apply_aggregate_segments("COUNT", ordered, starts, ends),
                )
            )
        else:
            columns.append(
                Column.from_values(
                    f"__agg_{index}",
                    apply_aggregate_segments(name, ordered, starts, ends),
                )
            )
    for index, (_key, expr) in enumerate(first_specs):
        values = evaluator.evaluate(expr)
        columns.append(
            Column.from_values(
                f"__first_{index}", _segment_firsts(values, order, starts, ends)
            )
        )
    return Table(columns, name=table.name)


#: Combine kernel per aggregate: how partial states merge into the total.
_COMBINE_KERNELS = {"COUNT": "SUM", "SUM": "SUM", "MIN": "MIN", "MAX": "MAX"}


def _merge_aggregate_partials(
    node: AggregateNode,
    merged: Table,
    agg_specs: list[tuple[str, FunctionCall]],
    first_specs: list[tuple[str, Expression]],
) -> Table:
    """Merge per-partition partial states into the final aggregate table."""
    n_keys = len(node.group_by)
    key_codes = [
        factorize_array(merged.column(f"__key_{index}").values)[0]
        for index in range(n_keys)
    ]
    order, starts, ends = group_segments(key_codes, merged.num_rows)
    n_groups = len(starts)

    agg_finals: dict[str, list[object]] = {}
    for index, (key, call) in enumerate(agg_specs):
        name = call.name.upper()
        partial = merged.column(f"__agg_{index}").values[order]
        if call.is_star or name == "COUNT":
            combined = apply_aggregate_segments("SUM", partial, starts, ends)
            agg_finals[key] = [0.0 if value is None else float(value) for value in combined]
        elif name == "AVG":
            sums = apply_aggregate_segments("SUM", partial, starts, ends)
            counts = apply_aggregate_segments(
                "SUM", merged.column(f"__agg_{index}_count").values[order], starts, ends
            )
            agg_finals[key] = [
                None if not count else float(total) / float(count)
                for total, count in zip(sums, counts)
            ]
        else:
            agg_finals[key] = apply_aggregate_segments(
                _COMBINE_KERNELS[name], partial, starts, ends
            )

    first_finals: dict[str, list[object]] = {}
    for index, (key, _expr) in enumerate(first_specs):
        values = merged.column(f"__first_{index}").values[order]
        out: list[object] = []
        for start, end in zip(starts, ends):
            if start == end:
                out.append(None)
                continue
            value = values[start]
            if is_string_array(values):
                out.append(value)
            else:
                out.append(None if np.isnan(value) else float(value))
        first_finals[key] = out

    def finalize(expr: Expression) -> list[object]:
        if isinstance(expr, FunctionCall) and expr.name.upper() in AGGREGATE_KERNELS:
            return agg_finals[str(expr)]
        if isinstance(expr, BinaryOp):
            left = finalize(expr.left)
            right = finalize(expr.right)
            return [_combine_scalar(expr.op, lv, rv) for lv, rv in zip(left, right)]
        if isinstance(expr, UnaryOp) and expr.op == "-":
            return [None if value is None else -float(value) for value in finalize(expr.operand)]
        if isinstance(expr, Literal):
            return [expr.value] * n_groups
        return first_finals[str(expr)]

    columns = [
        Column.from_values(item.output_name(index), finalize(item.expression))
        for index, item in enumerate(node.items)
    ]
    return Table(columns, name=merged.name)


def _combine_scalar(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    lv, rv = float(left), float(right)
    if op == "+":
        return lv + rv
    if op == "-":
        return lv - rv
    if op == "*":
        return lv * rv
    if op == "/":
        return None if rv == 0 else lv / rv
    if op == "%":
        return None if rv == 0 else lv % rv
    raise ExecutionError(f"unsupported operator {op!r} over aggregate results")
