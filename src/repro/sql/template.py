"""Plan templates: parse once per query *shape*, substitute literals.

Interactive dashboards re-issue the same query text with only the brush
bounds changed — at 200k rows the IVM fast path is parse-dominated, so
the tokenizer/parser run per brush step costs more than answering the
query.  A plan template removes the parser from that loop:

1. the query is tokenized (cheap) and its **shape key** computed by
   replacing every NUMBER/STRING token with ``?`` — the same stripping
   :func:`repro.sql.explain.query_shape` uses for cardinality feedback;
2. on a shape hit, the cached parsed statement is cloned with the new
   token literals substituted in source order — no parsing;
3. the cloned statement re-runs planning + optimization, so constant
   folding and filter pushdown still see the *actual* literals.

Safety: literal positions in the token stream must correspond 1:1, in
order, to substitutable ``Literal`` slots in the AST walk.  That holds
for the grammar's expression literals but **not** for every query — a
double-quoted string can be an alias, ``LIMIT``/``OFFSET`` consume
numbers outside expressions, ``+5`` folds the sign away.  Rather than
hard-code every exception, :func:`build_template` *verifies* the
correspondence when the template is built: the statement's collected
literal values must equal the token-derived values exactly (same order,
same types).  Shapes that fail verification are negatively cached and
always take the full parse path — so substitution is provably
value-faithful wherever it is used at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TokenizeError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    SubquerySource,
    TableSource,
    UnaryOp,
    WindowFunction,
)
from repro.sql.tokenizer import TokenType, tokenize


class TemplateMismatch(Exception):
    """Internal: token literals do not line up with the statement's slots."""


@dataclass(frozen=True)
class PlanTemplate:
    """A verified parsed statement reusable across literal values."""

    statement: SelectStatement
    n_literals: int


def _number_value(text: str) -> object:
    """Convert a NUMBER token exactly as the parser's ``_parse_primary``."""
    value = float(text)
    if value.is_integer() and "." not in text and "e" not in text.lower():
        return int(value)
    return value


def template_shape(sql: str) -> tuple[str, list[object]] | None:
    """Shape key (literals stripped to ``?``) + literal values, in order.

    Returns ``None`` when the text does not tokenize — such queries go
    straight to the parser, whose error message carries positions.
    """
    try:
        tokens = tokenize(sql)
    except TokenizeError:
        return None
    shape: list[str] = []
    values: list[object] = []
    for token in tokens:
        if token.ttype is TokenType.NUMBER:
            shape.append("?")
            values.append(_number_value(token.value))
        elif token.ttype is TokenType.STRING:
            shape.append("?")
            values.append(token.value)
        elif token.ttype is not TokenType.EOF:
            shape.append(token.value)
    return " ".join(shape), values


def _is_slot(value: object) -> bool:
    """Whether a ``Literal`` value is substitutable (came from a token).

    ``bool`` is excluded explicitly (it subclasses ``int`` but comes from
    the TRUE/FALSE keywords, which stay in the shape); ``None`` comes
    from the NULL keyword.
    """
    return isinstance(value, (int, float, str)) and not isinstance(value, bool)


class _Slots:
    """Cursor over the substitution values, with exhaustion checks."""

    def __init__(self, values: list[object]) -> None:
        self._values = values
        self._index = 0

    def next_value(self) -> object:
        if self._index >= len(self._values):
            raise TemplateMismatch("ran out of literal values")
        value = self._values[self._index]
        self._index += 1
        return value

    def exhausted(self) -> bool:
        return self._index == len(self._values)


def _map_expression(expr: Expression, slots: _Slots) -> Expression:
    """Clone ``expr`` substituting each literal slot in source order."""
    if isinstance(expr, Literal):
        if _is_slot(expr.value):
            value = slots.next_value()
            if not _is_slot(value):
                raise TemplateMismatch("non-literal value for literal slot")
            return Literal(value)
        return expr
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _map_expression(expr.operand, slots))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _map_expression(expr.left, slots),
            _map_expression(expr.right, slots),
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name,
            tuple(_map_expression(arg, slots) for arg in expr.args),
            distinct=expr.distinct,
            is_star=expr.is_star,
        )
    if isinstance(expr, WindowFunction):
        return WindowFunction(
            function=_map_expression(expr.function, slots),
            partition_by=tuple(_map_expression(e, slots) for e in expr.partition_by),
            order_by=tuple(
                OrderItem(_map_expression(o.expression, slots), o.descending)
                for o in expr.order_by
            ),
        )
    if isinstance(expr, CaseExpression):
        return CaseExpression(
            whens=tuple(
                (_map_expression(cond, slots), _map_expression(value, slots))
                for cond, value in expr.whens
            ),
            default=(
                _map_expression(expr.default, slots)
                if expr.default is not None
                else None
            ),
        )
    if isinstance(expr, InList):
        return InList(
            expr=_map_expression(expr.expr, slots),
            values=tuple(_map_expression(v, slots) for v in expr.values),
            negated=expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(expr=_map_expression(expr.expr, slots), negated=expr.negated)
    if isinstance(expr, Between):
        return Between(
            expr=_map_expression(expr.expr, slots),
            low=_map_expression(expr.low, slots),
            high=_map_expression(expr.high, slots),
            negated=expr.negated,
        )
    # Star and anything else literal-free.
    return expr


def _map_statement(stmt: SelectStatement, slots: _Slots) -> SelectStatement:
    """Clone ``stmt`` substituting literal slots in source (clause) order."""
    items = tuple(
        SelectItem(_map_expression(item.expression, slots), item.alias)
        for item in stmt.items
    )
    source = stmt.source
    if isinstance(source, SubquerySource):
        source = SubquerySource(_map_statement(source.query, slots), source.alias)
    elif isinstance(source, TableSource):
        source = TableSource(source.name, source.alias)
    where = _map_expression(stmt.where, slots) if stmt.where is not None else None
    group_by = tuple(_map_expression(e, slots) for e in stmt.group_by)
    having = _map_expression(stmt.having, slots) if stmt.having is not None else None
    order_by = tuple(
        OrderItem(_map_expression(o.expression, slots), o.descending)
        for o in stmt.order_by
    )
    limit = stmt.limit
    if limit is not None:
        limit = _clause_integer(slots.next_value(), "LIMIT")
    offset = stmt.offset
    if offset is not None:
        offset = _clause_integer(slots.next_value(), "OFFSET")
    return SelectStatement(
        items=items,
        source=source,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
        offset=offset,
        distinct=stmt.distinct,
        explain=stmt.explain,
    )


def _clause_integer(value: object, clause: str) -> int:
    """Replicate the parser's ``int(float(token))`` for LIMIT/OFFSET."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TemplateMismatch(f"{clause} slot got non-numeric value {value!r}")
    return int(float(value))


def collect_literal_values(stmt: SelectStatement) -> list[object]:
    """The statement's substitutable literal values in clause-walk order.

    Traverses nodes in exactly the order :func:`_map_statement` visits
    them, so collection and substitution can never disagree.
    """
    values: list[object] = []

    def walk_expr(expr: Expression) -> None:
        if isinstance(expr, Literal):
            if _is_slot(expr.value):
                values.append(expr.value)
            return
        if isinstance(expr, UnaryOp):
            walk_expr(expr.operand)
        elif isinstance(expr, BinaryOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, FunctionCall):
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, WindowFunction):
            walk_expr(expr.function)
            for e in expr.partition_by:
                walk_expr(e)
            for o in expr.order_by:
                walk_expr(o.expression)
        elif isinstance(expr, CaseExpression):
            for cond, value in expr.whens:
                walk_expr(cond)
                walk_expr(value)
            if expr.default is not None:
                walk_expr(expr.default)
        elif isinstance(expr, InList):
            walk_expr(expr.expr)
            for v in expr.values:
                walk_expr(v)
        elif isinstance(expr, IsNull):
            walk_expr(expr.expr)
        elif isinstance(expr, Between):
            walk_expr(expr.expr)
            walk_expr(expr.low)
            walk_expr(expr.high)

    def walk_stmt(node: SelectStatement) -> None:
        for item in node.items:
            walk_expr(item.expression)
        if isinstance(node.source, SubquerySource):
            walk_stmt(node.source.query)
        if node.where is not None:
            walk_expr(node.where)
        for e in node.group_by:
            walk_expr(e)
        if node.having is not None:
            walk_expr(node.having)
        for o in node.order_by:
            walk_expr(o.expression)
        if node.limit is not None:
            values.append(node.limit)
        if node.offset is not None:
            values.append(node.offset)

    walk_stmt(stmt)
    return values


def _values_correspond(collected: list[object], tokens: list[object]) -> bool:
    """Strict order + type + value correspondence check."""
    if len(collected) != len(tokens):
        return False
    for a, b in zip(collected, tokens):
        if type(a) is not type(b) or a != b:
            return False
    return True


def build_template(
    stmt: SelectStatement, token_values: list[object]
) -> PlanTemplate | None:
    """Build a verified template, or ``None`` when the shape is unsafe.

    Unsafe means the statement's literal slots do not correspond 1:1 in
    order and value to the token stream's literals (string aliases,
    folded unary signs, truncated LIMIT floats...).  Callers negatively
    cache a ``None`` so the shape always parses from then on.
    """
    if not isinstance(stmt, SelectStatement):
        return None
    if not _values_correspond(collect_literal_values(stmt), token_values):
        return None
    return PlanTemplate(statement=stmt, n_literals=len(token_values))


def instantiate(template: PlanTemplate, values: list[object]) -> SelectStatement | None:
    """The template's statement with ``values`` substituted, or ``None``.

    ``None`` (value-count drift, a non-integer LIMIT...) sends the
    caller to the full parse path; it never produces a wrong statement.
    """
    if len(values) != template.n_literals:
        return None
    slots = _Slots(values)
    try:
        stmt = _map_statement(template.statement, slots)
    except TemplateMismatch:
        return None
    if not slots.exhausted():
        return None
    return stmt
