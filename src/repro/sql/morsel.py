"""Shared worker pools for morsel-driven partitioned execution.

A *morsel* is one partition's share of a partition-parallel operator
chain (scan → filter → project → partial aggregate).  The engine owns
one pool and every query's executor submits its morsels there, so
concurrent queries share one bounded set of workers instead of spawning
their own.  Two pool flavours implement the same ``map`` contract:

:class:`MorselPool`
    Thread-based.  Cheap dispatch, zero-copy partition views — but the
    hot morsel path (string factorize, per-partition re-group, plan
    interpretation) holds the GIL, so the workers axis is flat.

:class:`ProcessMorselPool`
    Process-based, for true multicore scaling.  Workers attach
    read-only to the table's column buffers via
    ``multiprocessing.shared_memory`` (see :mod:`repro.storage.shared`),
    so only a compact picklable task spec crosses the process boundary.
    Fork-server start method where the platform offers it (workers
    never inherit the parent's thread/lock state), spawn otherwise.

Both pools are created lazily — an engine that never touches a
partitioned table never starts a worker — and ``workers <= 1`` thread
pools degrade to ordinary serial iteration, which keeps the partitioned
executor's single code path exactly equivalent to serial execution.

Lifecycle: ``Database.close()`` shuts its pools down, and a module
``atexit`` hook sweeps any pool still live at interpreter exit (an
abandoned engine must not strand worker processes or keep CI hanging).
``shutdown()`` is safe to race with in-flight ``map`` calls: a submit
that loses the race runs its tasks inline instead of failing.
"""

from __future__ import annotations

import atexit
import os
import weakref
from collections import Counter
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from threading import Lock
from typing import TypeVar

from repro.errors import ExecutionError

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_MORSEL_WORKERS"

#: Environment default for the morsel executor kind: "thread" | "process".
MORSEL_EXECUTOR_ENV = "REPRO_MORSEL_EXECUTOR"

#: Environment override for the process-pool start method.
START_METHOD_ENV = "REPRO_MORSEL_START_METHOD"

#: Environment override for the process-dispatch table-size floor.
PROCESS_MIN_ROWS_ENV = "REPRO_MORSEL_PROCESS_MIN_ROWS"

#: Below this many table rows, process dispatch cannot amortise the task
#: pickling + result transfer and the executor falls back to threads.
DEFAULT_PROCESS_MIN_ROWS = 32_768

#: Upper bound on the default worker count (diminishing returns beyond).
_DEFAULT_WORKER_CAP = 8

#: Live pools swept by the atexit hook.  A WeakSet: the hook must not
#: keep abandoned engines (and their catalogs) alive.
_LIVE_POOLS: "weakref.WeakSet[object]" = weakref.WeakSet()


def default_workers() -> int:
    """The default morsel worker count (env override, else capped cores)."""
    env = os.environ.get(WORKERS_ENV)
    if env is not None:
        return max(1, int(env))
    return max(1, min(_DEFAULT_WORKER_CAP, os.cpu_count() or 1))


def default_executor() -> str:
    """The default morsel executor kind (``REPRO_MORSEL_EXECUTOR`` env)."""
    value = os.environ.get(MORSEL_EXECUTOR_ENV, "thread").strip().lower()
    if value not in ("thread", "process"):
        raise ValueError(
            f"{MORSEL_EXECUTOR_ENV} must be 'thread' or 'process', got {value!r}"
        )
    return value


def default_process_min_rows() -> int:
    """Table-row floor below which process dispatch falls back to threads."""
    env = os.environ.get(PROCESS_MIN_ROWS_ENV)
    if env is not None:
        return max(0, int(env))
    return DEFAULT_PROCESS_MIN_ROWS


def default_start_method() -> str:
    """Preferred multiprocessing start method (env override respected).

    ``forkserver`` where available: workers are forked from a clean
    single-threaded server process, so they never inherit the serving
    tier's threads/locks mid-flight (plain ``fork`` would) and warm
    dispatch stays far cheaper than ``spawn``'s full interpreter boot.
    """
    import multiprocessing

    env = os.environ.get(START_METHOD_ENV)
    methods = multiprocessing.get_all_start_methods()
    if env is not None:
        if env not in methods:
            raise ValueError(
                f"{START_METHOD_ENV}={env!r} unsupported here; one of {methods}"
            )
        return env
    return "forkserver" if "forkserver" in methods else "spawn"


@atexit.register
def _shutdown_live_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in list(_LIVE_POOLS):
        pool.shutdown()


class MorselPool:
    """A lazily-started, shared thread pool for partition morsels.

    Parameters
    ----------
    workers:
        Worker thread count; ``None`` resolves via :func:`default_workers`
        at construction time.  ``0``/``1`` disables threading entirely —
        :meth:`map` then runs tasks inline, preserving one code path.
    """

    kind = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self._executor: ThreadPoolExecutor | None = None
        self._lock = Lock()
        _LIVE_POOLS.add(self)

    @property
    def parallel(self) -> bool:
        """Whether this pool actually fans work out to threads."""
        return self.workers > 1

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="morsel"
                )
            return self._executor

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        parallel: bool | None = None,
    ) -> list[_R]:
        """Apply ``fn`` to every item, preserving input order.

        Runs inline (no threads) when the pool is serial, there is at
        most one item, or the caller passes ``parallel=False`` (morsels
        too small to amortise a thread handoff); otherwise dispatches to
        the shared executor.  The first raised exception propagates to
        the caller either way.  A dispatch that races a concurrent
        :meth:`shutdown` falls back to inline execution instead of
        surfacing the executor's ``RuntimeError``.
        """
        materialized: Sequence[_T] = list(items)
        use_threads = self.parallel if parallel is None else (parallel and self.parallel)
        if not use_threads or len(materialized) <= 1:
            return [fn(item) for item in materialized]
        executor = self._ensure_executor()
        try:
            return list(executor.map(fn, materialized))
        except RuntimeError:
            # Lost a race with shutdown(): the executor refused new
            # futures.  Results must still come back — run inline.
            return [fn(item) for item in materialized]

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent; pool restarts on next use)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


def _run_tagged(payload: tuple[Callable[[_T], _R], _T]) -> tuple[int, _R]:
    """Worker-side trampoline tagging each result with the worker's pid.

    Module-level so it pickles by reference under spawn/forkserver; the
    pid tags feed the pool's worker-utilization metrics.
    """
    fn, item = payload
    return os.getpid(), fn(item)


class ProcessMorselPool:
    """A lazily-started pool of worker *processes* for partition morsels.

    Task functions and their results must pickle; large inputs should
    travel via shared memory (the executor sends
    :class:`~repro.sql.executor.MorselTaskSpec` + a partition index, and
    workers attach to the table's segment).  Unlike the thread pool,
    ``workers == 1`` still dispatches — a one-worker process leg is the
    dispatch-overhead baseline the fig12 scaling curve is measured
    against.

    A worker that dies mid-task (OOM-kill, hard crash) surfaces as a
    clean :class:`~repro.errors.ExecutionError` — never a hang — and the
    broken executor is discarded so the next query gets a fresh pool.
    """

    kind = "process"

    def __init__(
        self, workers: int | None = None, start_method: str | None = None
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.start_method = start_method or default_start_method()
        self._executor: ProcessPoolExecutor | None = None
        self._lock = Lock()
        self._tasks_by_pid: Counter[int] = Counter()
        _LIVE_POOLS.add(self)

    @property
    def parallel(self) -> bool:
        """Process pools always dispatch when asked (see class docstring)."""
        return True

    def _ensure_executor(self) -> ProcessPoolExecutor:
        import multiprocessing

        with self._lock:
            if self._executor is None:
                context = multiprocessing.get_context(self.start_method)
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            return self._executor

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        parallel: bool | None = None,
    ) -> list[_R]:
        """Apply ``fn`` to every item in worker processes, preserving order.

        Runs inline for a single item or ``parallel=False``.  Exceptions
        raised by ``fn`` propagate to the caller (pickled back from the
        worker); a worker *process* death raises
        :class:`~repro.errors.ExecutionError` and resets the pool.
        """
        materialized: Sequence[_T] = list(items)
        use_processes = True if parallel is None else bool(parallel)
        if not use_processes or len(materialized) <= 1:
            return [fn(item) for item in materialized]
        executor = self._ensure_executor()
        try:
            tagged = list(executor.map(_run_tagged, [(fn, item) for item in materialized]))
        except BrokenProcessPool as exc:
            # Must precede the RuntimeError arm: BrokenProcessPool IS a
            # RuntimeError, and a dead worker must surface, not run inline.
            with self._lock:
                broken, self._executor = self._executor, None
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)
            raise ExecutionError(
                "morsel worker process died mid-task; the process pool was "
                "reset (the next query starts fresh workers)"
            ) from exc
        except RuntimeError:
            # Raced shutdown() — same inline fallback as the thread pool.
            return [fn(item) for item in materialized]
        results: list[_R] = []
        with self._lock:
            for pid, value in tagged:
                self._tasks_by_pid[pid] += 1
                results.append(value)
        return results

    def utilization(self) -> dict[str, float]:
        """Worker-utilization counters for the observability surface."""
        with self._lock:
            tasks = sum(self._tasks_by_pid.values())
            used = len(self._tasks_by_pid)
        return {
            "workers": float(self.workers),
            "workers_used": float(used),
            "tasks": float(tasks),
        }

    def shutdown(self) -> None:
        """Stop the worker processes (idempotent; pool restarts on next use)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
