"""Shared worker pool for morsel-driven partitioned execution.

A *morsel* is one partition's share of a partition-parallel operator
chain (scan → filter → project → partial aggregate).  The engine owns a
single :class:`MorselPool` and every query's executor submits its morsels
there, so concurrent queries share one bounded set of worker threads
instead of spawning their own.

Threads (not processes) are the right vehicle here: morsel tasks spend
their time in numpy kernels over large arrays, which release the GIL,
and the partitions are zero-copy views over shared column arrays that a
process pool would have to pickle.

The pool is created lazily — an engine that never touches a partitioned
table never starts a thread — and a pool configured with ``workers <= 1``
degrades to ordinary serial iteration, which keeps the partitioned
executor's single code path exactly equivalent to serial execution.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_MORSEL_WORKERS"

#: Upper bound on the default worker count (diminishing returns beyond).
_DEFAULT_WORKER_CAP = 8


def default_workers() -> int:
    """The default morsel worker count (env override, else capped cores)."""
    env = os.environ.get(WORKERS_ENV)
    if env is not None:
        return max(1, int(env))
    return max(1, min(_DEFAULT_WORKER_CAP, os.cpu_count() or 1))


class MorselPool:
    """A lazily-started, shared thread pool for partition morsels.

    Parameters
    ----------
    workers:
        Worker thread count; ``None`` resolves via :func:`default_workers`
        at construction time.  ``0``/``1`` disables threading entirely —
        :meth:`map` then runs tasks inline, preserving one code path.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self._executor: ThreadPoolExecutor | None = None
        self._lock = Lock()

    @property
    def parallel(self) -> bool:
        """Whether this pool actually fans work out to threads."""
        return self.workers > 1

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="morsel"
                )
            return self._executor

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        parallel: bool | None = None,
    ) -> list[_R]:
        """Apply ``fn`` to every item, preserving input order.

        Runs inline (no threads) when the pool is serial, there is at
        most one item, or the caller passes ``parallel=False`` (morsels
        too small to amortise a thread handoff); otherwise dispatches to
        the shared executor.  The first raised exception propagates to
        the caller either way.
        """
        materialized: Sequence[_T] = list(items)
        use_threads = self.parallel if parallel is None else (parallel and self.parallel)
        if not use_threads or len(materialized) <= 1:
            return [fn(item) for item in materialized]
        executor = self._ensure_executor()
        return list(executor.map(fn, materialized))

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent; pool restarts on next use)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
