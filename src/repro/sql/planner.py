"""Logical query plans.

The planner turns a parsed :class:`~repro.sql.ast_nodes.SelectStatement`
into a tree of logical operators.  The tree is intentionally simple — the
SQL subset has a single table source per query level — so plans are a chain
(Scan → Filter → Window → Aggregate/Project → Having → Distinct → Sort →
Limit) with nesting only through sub-query sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanningError
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    SubquerySource,
    TableSource,
    UnaryOp,
    WindowFunction,
    contains_aggregate,
    contains_window,
    referenced_columns,
)


# --------------------------------------------------------------------------- #
# Plan node definitions
# --------------------------------------------------------------------------- #


@dataclass
class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> list["PlanNode"]:
        """Child nodes (empty for leaves)."""
        return []

    def label(self) -> str:
        """Short human-readable label used by EXPLAIN output."""
        return type(self).__name__


@dataclass
class ScanNode(PlanNode):
    """Scan of a registered base table."""

    table_name: str
    alias: str | None = None

    def label(self) -> str:
        return f"Scan({self.table_name})"


@dataclass
class SubqueryNode(PlanNode):
    """A nested query acting as this query's source."""

    plan: PlanNode
    alias: str | None = None

    def children(self) -> list[PlanNode]:
        return [self.plan]

    def label(self) -> str:
        return "Subquery"


@dataclass
class FilterNode(PlanNode):
    """Row filter (WHERE or HAVING)."""

    child: PlanNode
    predicate: Expression

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Filter({self.predicate})"


@dataclass
class ProjectNode(PlanNode):
    """Computation of the SELECT list for non-aggregate queries."""

    child: PlanNode
    items: tuple[SelectItem, ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Project(" + ", ".join(str(i) for i in self.items) + ")"


@dataclass
class AggregateNode(PlanNode):
    """Grouped (or global) aggregation computing the SELECT list."""

    child: PlanNode
    group_by: tuple[Expression, ...]
    items: tuple[SelectItem, ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(str(e) for e in self.group_by) or "<global>"
        return f"Aggregate(by=[{keys}])"


@dataclass
class WindowNode(PlanNode):
    """Evaluation of window functions, appending one column per function."""

    child: PlanNode
    windows: tuple[tuple[str, WindowFunction], ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Window(n={len(self.windows)})"


@dataclass
class SortNode(PlanNode):
    """ORDER BY."""

    child: PlanNode
    keys: tuple[OrderItem, ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Sort(" + ", ".join(str(k) for k in self.keys) + ")"


@dataclass
class LimitNode(PlanNode):
    """LIMIT/OFFSET."""

    child: PlanNode
    limit: int | None = None
    offset: int | None = None

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Limit(limit={self.limit}, offset={self.offset})"


@dataclass
class DistinctNode(PlanNode):
    """SELECT DISTINCT de-duplication."""

    child: PlanNode

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class LogicalPlan:
    """Wrapper pairing the root node with the originating statement."""

    root: PlanNode
    statement: SelectStatement
    explain: bool = False

    def pretty(self) -> str:
        """Indented text rendering of the plan tree."""
        lines: list[str] = []
        _render(self.root, 0, lines)
        return "\n".join(lines)


def _render(node: PlanNode, depth: int, lines: list[str]) -> None:
    lines.append("  " * depth + node.label())
    for child in node.children():
        _render(child, depth + 1, lines)


# --------------------------------------------------------------------------- #
# Statement -> logical plan
# --------------------------------------------------------------------------- #


def build_logical_plan(statement: SelectStatement) -> LogicalPlan:
    """Construct the logical plan for a parsed statement."""
    root = _plan_query(statement)
    return LogicalPlan(root=root, statement=statement, explain=statement.explain)


def _plan_query(statement: SelectStatement) -> PlanNode:
    node = _plan_source(statement)

    if statement.where is not None:
        if contains_aggregate(statement.where):
            raise PlanningError("aggregate functions are not allowed in WHERE")
        node = FilterNode(child=node, predicate=statement.where)

    window_items = _collect_windows(statement.items)
    if window_items:
        node = WindowNode(child=node, windows=tuple(window_items))

    has_aggregate = bool(statement.group_by) or any(
        contains_aggregate(item.expression) for item in statement.items
    )

    sorted_below_projection = False
    if has_aggregate:
        _validate_aggregate_items(statement)
        node = AggregateNode(
            child=node,
            group_by=statement.group_by,
            items=statement.items,
        )
    else:
        # Standard SQL lets ORDER BY reference input columns that the SELECT
        # list drops.  When that happens (and no '*' keeps them around), sort
        # before projecting so the keys are still available.
        if statement.order_by and not statement.distinct:
            output_names = {
                item.output_name(index) for index, item in enumerate(statement.items)
            }
            has_star = any(isinstance(item.expression, Star) for item in statement.items)
            needs_input_columns = not has_star and any(
                not referenced_columns(key.expression) <= output_names
                for key in statement.order_by
            )
            if needs_input_columns:
                node = SortNode(child=node, keys=statement.order_by)
                sorted_below_projection = True
        node = ProjectNode(child=node, items=statement.items)

    if statement.having is not None:
        if not has_aggregate:
            raise PlanningError("HAVING requires GROUP BY or aggregates")
        node = FilterNode(
            child=node,
            predicate=_rewrite_having(statement.having, statement.items),
        )

    if statement.distinct:
        node = DistinctNode(child=node)

    if statement.order_by and not sorted_below_projection:
        node = SortNode(child=node, keys=statement.order_by)

    if statement.limit is not None or statement.offset is not None:
        node = LimitNode(child=node, limit=statement.limit, offset=statement.offset)

    return node


def _plan_source(statement: SelectStatement) -> PlanNode:
    source = statement.source
    if isinstance(source, TableSource):
        return ScanNode(table_name=source.name, alias=source.alias)
    if isinstance(source, SubquerySource):
        return SubqueryNode(plan=_plan_query(source.query), alias=source.alias)
    raise PlanningError(f"unsupported FROM source: {source!r}")


def _collect_windows(items: tuple[SelectItem, ...]) -> list[tuple[str, WindowFunction]]:
    windows: list[tuple[str, WindowFunction]] = []
    for index, item in enumerate(items):
        expr = item.expression
        if isinstance(expr, WindowFunction):
            windows.append((item.output_name(index), expr))
        elif contains_window(expr) and not isinstance(expr, WindowFunction):
            raise PlanningError(
                "window functions may only appear as a top-level SELECT item"
            )
    return windows


def _validate_aggregate_items(statement: SelectStatement) -> None:
    """Ensure non-aggregate SELECT items appear in GROUP BY."""
    group_exprs = {str(e) for e in statement.group_by}
    group_names = {
        e.name for e in statement.group_by if isinstance(e, ColumnRef)
    }
    for item in statement.items:
        expr = item.expression
        if isinstance(expr, Star):
            raise PlanningError("SELECT * cannot be combined with GROUP BY/aggregates")
        if contains_aggregate(expr) or isinstance(expr, WindowFunction):
            continue
        if str(expr) in group_exprs:
            continue
        if isinstance(expr, ColumnRef) and expr.name in group_names:
            continue
        if item.alias is not None and item.alias in {
            e.name for e in statement.group_by if isinstance(e, ColumnRef)
        }:
            continue
        # Expressions that exactly match a group-by expression by structure
        # were covered above; anything else is an error just as in a real
        # SQL engine.
        raise PlanningError(
            f"SELECT item {item} must be an aggregate or appear in GROUP BY"
        )


def _rewrite_having(predicate: Expression, items: tuple[SelectItem, ...]) -> Expression:
    """Replace aggregate expressions in HAVING with their output columns.

    ``HAVING COUNT(*) > 1`` executes against the aggregate's output table,
    where the aggregate value lives in a named column.  Any sub-expression
    of the HAVING predicate that matches a SELECT item (structurally, via
    its string form) is replaced by a reference to that item's output name.
    A HAVING aggregate that does not appear in the SELECT list is rejected.
    """
    replacements = {
        str(item.expression): ColumnRef(item.output_name(index))
        for index, item in enumerate(items)
        if not isinstance(item.expression, Star)
    }

    def rewrite(expr: Expression) -> Expression:
        key = str(expr)
        if key in replacements:
            return replacements[key]
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if contains_aggregate(expr):
            raise PlanningError(
                f"HAVING expression {expr} must also appear in the SELECT list"
            )
        return expr

    return rewrite(predicate)


def plan_cardinality_hint(node: PlanNode) -> str:
    """Describe the node type for cost estimation grouping."""
    return type(node).__name__


# --------------------------------------------------------------------------- #
# Partition-parallel prefix analysis
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PartitionablePrefix:
    """A ``Scan → (Filter|Project|Subquery)*`` chain rooted at one node.

    The chain's operators are all *row-local*: applying them to each
    horizontal partition of the scanned table and concatenating the
    results (in partition order) is row-identical to applying them to the
    whole table, because filters and projections never look across rows.
    This is the unit of morsel-parallel execution.

    ``scan_filters`` holds the predicates of the chain's filters that sit
    *directly above the scan* — no projection or sub-query boundary in
    between, so every column they reference is a base column of the
    scanned table.  Only these predicates are safe inputs for zone-map
    partition pruning; a predicate above a projection may reference a
    computed column whose values the base table's zone maps know nothing
    about.
    """

    scan: ScanNode
    #: Chain nodes from the scan upward (excluding the scan itself).
    nodes: tuple[PlanNode, ...]
    #: Predicates applying directly to base-table rows (pruning-safe).
    scan_filters: tuple[Expression, ...]


def partitionable_prefix(node: PlanNode) -> PartitionablePrefix | None:
    """Match the partition-parallel prefix ending at ``node``.

    Returns ``None`` when the subtree under ``node`` contains anything
    that is not row-local (aggregation, windows, sorts, limits) or when
    a projection computes window columns (those require a WindowNode
    below, which already breaks the chain).
    """
    chain: list[PlanNode] = []
    current: PlanNode = node
    while True:
        if isinstance(current, ScanNode):
            break
        if isinstance(current, FilterNode):
            chain.append(current)
            current = current.child
            continue
        if isinstance(current, ProjectNode):
            if any(
                not isinstance(item.expression, Star)
                and (contains_window(item.expression) or contains_aggregate(item.expression))
                for item in current.items
            ):
                return None
            chain.append(current)
            current = current.child
            continue
        if isinstance(current, SubqueryNode):
            chain.append(current)
            current = current.plan
            continue
        return None
    scan = current
    # Walk the chain bottom-up (it is collected top-down): filters below
    # the first projection/sub-query boundary apply to raw scan rows.
    scan_filters: list[Expression] = []
    for chain_node in reversed(chain):
        if isinstance(chain_node, FilterNode):
            scan_filters.append(chain_node.predicate)
        else:
            break
    return PartitionablePrefix(
        scan=scan, nodes=tuple(chain), scan_filters=tuple(scan_filters)
    )
