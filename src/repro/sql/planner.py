"""Logical query plans.

The planner turns a parsed :class:`~repro.sql.ast_nodes.SelectStatement`
into a tree of logical operators.  The tree is intentionally simple — the
SQL subset has a single table source per query level — so plans are a chain
(Scan → Filter → Window → Aggregate/Project → Having → Distinct → Sort →
Limit) with nesting only through sub-query sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanningError
from repro.sql.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    SubquerySource,
    TableSource,
    UnaryOp,
    WindowFunction,
    contains_aggregate,
    contains_window,
    referenced_columns,
)


# --------------------------------------------------------------------------- #
# Plan node definitions
# --------------------------------------------------------------------------- #


@dataclass
class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> list["PlanNode"]:
        """Child nodes (empty for leaves)."""
        return []

    def label(self) -> str:
        """Short human-readable label used by EXPLAIN output."""
        return type(self).__name__


@dataclass
class ScanNode(PlanNode):
    """Scan of a registered base table."""

    table_name: str
    alias: str | None = None

    def label(self) -> str:
        return f"Scan({self.table_name})"


@dataclass
class SubqueryNode(PlanNode):
    """A nested query acting as this query's source."""

    plan: PlanNode
    alias: str | None = None

    def children(self) -> list[PlanNode]:
        return [self.plan]

    def label(self) -> str:
        return "Subquery"


@dataclass
class FilterNode(PlanNode):
    """Row filter (WHERE or HAVING)."""

    child: PlanNode
    predicate: Expression

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Filter({self.predicate})"


@dataclass
class ProjectNode(PlanNode):
    """Computation of the SELECT list for non-aggregate queries."""

    child: PlanNode
    items: tuple[SelectItem, ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Project(" + ", ".join(str(i) for i in self.items) + ")"


@dataclass
class AggregateNode(PlanNode):
    """Grouped (or global) aggregation computing the SELECT list."""

    child: PlanNode
    group_by: tuple[Expression, ...]
    items: tuple[SelectItem, ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(str(e) for e in self.group_by) or "<global>"
        return f"Aggregate(by=[{keys}])"


@dataclass
class WindowNode(PlanNode):
    """Evaluation of window functions, appending one column per function."""

    child: PlanNode
    windows: tuple[tuple[str, WindowFunction], ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Window(n={len(self.windows)})"


@dataclass
class SortNode(PlanNode):
    """ORDER BY."""

    child: PlanNode
    keys: tuple[OrderItem, ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Sort(" + ", ".join(str(k) for k in self.keys) + ")"


@dataclass
class LimitNode(PlanNode):
    """LIMIT/OFFSET."""

    child: PlanNode
    limit: int | None = None
    offset: int | None = None

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Limit(limit={self.limit}, offset={self.offset})"


@dataclass
class DistinctNode(PlanNode):
    """SELECT DISTINCT de-duplication."""

    child: PlanNode

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class MaterializedNode(PlanNode):
    """A leaf carrying an already-computed result table.

    The IVM maintenance path replaces an eligible plan's aggregate
    subtree with this node so the plan's suffix operators (HAVING /
    DISTINCT / ORDER BY / LIMIT) run unchanged over the incrementally
    maintained aggregate rows.  ``table`` is duck-typed to avoid a
    planner -> storage import; the executor treats it as a
    :class:`~repro.storage.table.Table`.
    """

    table: object = None

    def label(self) -> str:
        return f"Materialized(rows={getattr(self.table, 'num_rows', '?')})"


@dataclass
class LogicalPlan:
    """Wrapper pairing the root node with the originating statement."""

    root: PlanNode
    statement: SelectStatement
    explain: bool = False

    def pretty(self) -> str:
        """Indented text rendering of the plan tree."""
        lines: list[str] = []
        _render(self.root, 0, lines)
        return "\n".join(lines)


def _render(node: PlanNode, depth: int, lines: list[str]) -> None:
    lines.append("  " * depth + node.label())
    for child in node.children():
        _render(child, depth + 1, lines)


# --------------------------------------------------------------------------- #
# Statement -> logical plan
# --------------------------------------------------------------------------- #


def build_logical_plan(statement: SelectStatement) -> LogicalPlan:
    """Construct the logical plan for a parsed statement."""
    root = _plan_query(statement)
    return LogicalPlan(root=root, statement=statement, explain=statement.explain)


def _plan_query(statement: SelectStatement) -> PlanNode:
    node = _plan_source(statement)

    if statement.where is not None:
        if contains_aggregate(statement.where):
            raise PlanningError("aggregate functions are not allowed in WHERE")
        node = FilterNode(child=node, predicate=statement.where)

    window_items = _collect_windows(statement.items)
    if window_items:
        node = WindowNode(child=node, windows=tuple(window_items))

    has_aggregate = bool(statement.group_by) or any(
        contains_aggregate(item.expression) for item in statement.items
    )

    sorted_below_projection = False
    if has_aggregate:
        _validate_aggregate_items(statement)
        node = AggregateNode(
            child=node,
            group_by=statement.group_by,
            items=statement.items,
        )
    else:
        # Standard SQL lets ORDER BY reference input columns that the SELECT
        # list drops.  When that happens (and no '*' keeps them around), sort
        # before projecting so the keys are still available.
        if statement.order_by and not statement.distinct:
            output_names = {
                item.output_name(index) for index, item in enumerate(statement.items)
            }
            has_star = any(isinstance(item.expression, Star) for item in statement.items)
            needs_input_columns = not has_star and any(
                not referenced_columns(key.expression) <= output_names
                for key in statement.order_by
            )
            if needs_input_columns:
                node = SortNode(child=node, keys=statement.order_by)
                sorted_below_projection = True
        node = ProjectNode(child=node, items=statement.items)

    if statement.having is not None:
        if not has_aggregate:
            raise PlanningError("HAVING requires GROUP BY or aggregates")
        node = FilterNode(
            child=node,
            predicate=_rewrite_having(statement.having, statement.items),
        )

    if statement.distinct:
        node = DistinctNode(child=node)

    if statement.order_by and not sorted_below_projection:
        node = SortNode(child=node, keys=statement.order_by)

    if statement.limit is not None or statement.offset is not None:
        node = LimitNode(child=node, limit=statement.limit, offset=statement.offset)

    return node


def _plan_source(statement: SelectStatement) -> PlanNode:
    source = statement.source
    if isinstance(source, TableSource):
        return ScanNode(table_name=source.name, alias=source.alias)
    if isinstance(source, SubquerySource):
        return SubqueryNode(plan=_plan_query(source.query), alias=source.alias)
    raise PlanningError(f"unsupported FROM source: {source!r}")


def _collect_windows(items: tuple[SelectItem, ...]) -> list[tuple[str, WindowFunction]]:
    windows: list[tuple[str, WindowFunction]] = []
    for index, item in enumerate(items):
        expr = item.expression
        if isinstance(expr, WindowFunction):
            windows.append((item.output_name(index), expr))
        elif contains_window(expr) and not isinstance(expr, WindowFunction):
            raise PlanningError(
                "window functions may only appear as a top-level SELECT item"
            )
    return windows


def _validate_aggregate_items(statement: SelectStatement) -> None:
    """Ensure non-aggregate SELECT items appear in GROUP BY."""
    group_exprs = {str(e) for e in statement.group_by}
    group_names = {
        e.name for e in statement.group_by if isinstance(e, ColumnRef)
    }
    for item in statement.items:
        expr = item.expression
        if isinstance(expr, Star):
            raise PlanningError("SELECT * cannot be combined with GROUP BY/aggregates")
        if contains_aggregate(expr) or isinstance(expr, WindowFunction):
            continue
        if str(expr) in group_exprs:
            continue
        if isinstance(expr, ColumnRef) and expr.name in group_names:
            continue
        if item.alias is not None and item.alias in {
            e.name for e in statement.group_by if isinstance(e, ColumnRef)
        }:
            continue
        # Expressions that exactly match a group-by expression by structure
        # were covered above; anything else is an error just as in a real
        # SQL engine.
        raise PlanningError(
            f"SELECT item {item} must be an aggregate or appear in GROUP BY"
        )


def _rewrite_having(predicate: Expression, items: tuple[SelectItem, ...]) -> Expression:
    """Replace aggregate expressions in HAVING with their output columns.

    ``HAVING COUNT(*) > 1`` executes against the aggregate's output table,
    where the aggregate value lives in a named column.  Any sub-expression
    of the HAVING predicate that matches a SELECT item (structurally, via
    its string form) is replaced by a reference to that item's output name.
    A HAVING aggregate that does not appear in the SELECT list is rejected.
    """
    replacements = {
        str(item.expression): ColumnRef(item.output_name(index))
        for index, item in enumerate(items)
        if not isinstance(item.expression, Star)
    }

    def rewrite(expr: Expression) -> Expression:
        key = str(expr)
        if key in replacements:
            return replacements[key]
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if contains_aggregate(expr):
            raise PlanningError(
                f"HAVING expression {expr} must also appear in the SELECT list"
            )
        return expr

    return rewrite(predicate)


def plan_cardinality_hint(node: PlanNode) -> str:
    """Describe the node type for cost estimation grouping."""
    return type(node).__name__


# --------------------------------------------------------------------------- #
# Partition-parallel prefix analysis
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PartitionablePrefix:
    """A ``Scan → (Filter|Project|Subquery)*`` chain rooted at one node.

    The chain's operators are all *row-local*: applying them to each
    horizontal partition of the scanned table and concatenating the
    results (in partition order) is row-identical to applying them to the
    whole table, because filters and projections never look across rows.
    This is the unit of morsel-parallel execution.

    ``scan_filters`` holds the predicates of the chain's filters that sit
    *directly above the scan* — no projection or sub-query boundary in
    between, so every column they reference is a base column of the
    scanned table.  Only these predicates are safe inputs for zone-map
    partition pruning; a predicate above a projection may reference a
    computed column whose values the base table's zone maps know nothing
    about.
    """

    scan: ScanNode
    #: Chain nodes from the scan upward (excluding the scan itself).
    nodes: tuple[PlanNode, ...]
    #: Predicates applying directly to base-table rows (pruning-safe).
    scan_filters: tuple[Expression, ...]


def partitionable_prefix(node: PlanNode) -> PartitionablePrefix | None:
    """Match the partition-parallel prefix ending at ``node``.

    Returns ``None`` when the subtree under ``node`` contains anything
    that is not row-local (aggregation, windows, sorts, limits) or when
    a projection computes window columns (those require a WindowNode
    below, which already breaks the chain).
    """
    chain: list[PlanNode] = []
    current: PlanNode = node
    while True:
        if isinstance(current, ScanNode):
            break
        if isinstance(current, FilterNode):
            chain.append(current)
            current = current.child
            continue
        if isinstance(current, ProjectNode):
            if any(
                not isinstance(item.expression, Star)
                and (contains_window(item.expression) or contains_aggregate(item.expression))
                for item in current.items
            ):
                return None
            chain.append(current)
            current = current.child
            continue
        if isinstance(current, SubqueryNode):
            chain.append(current)
            current = current.plan
            continue
        return None
    scan = current
    # Walk the chain bottom-up (it is collected top-down): filters below
    # the first projection/sub-query boundary apply to raw scan rows.
    scan_filters: list[Expression] = []
    for chain_node in reversed(chain):
        if isinstance(chain_node, FilterNode):
            scan_filters.append(chain_node.predicate)
        else:
            break
    return PartitionablePrefix(
        scan=scan, nodes=tuple(chain), scan_filters=tuple(scan_filters)
    )


# --------------------------------------------------------------------------- #
# Incremental view maintenance eligibility analysis
# --------------------------------------------------------------------------- #

#: Aggregates the IVM subsystem can maintain under insert/delete deltas.
#: MIN/MAX are incrementable with a retraction fallback (deleting the
#: current extremum forces a partial re-scan); AVG is maintained as
#: SUM + COUNT.  See docs/IVM.md for the delta algebra.
INCREMENTABLE_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(frozen=True)
class BrushInterval:
    """A one-dimensional selection ``[low, high]`` on the brush column.

    ``None`` bounds are unbounded.  The interval is the intersection of
    every range conjunct on the brush column, so a contradictory WHERE
    clause yields an interval whose :meth:`is_empty` is true.
    """

    low: float | None = None
    high: float | None = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    def is_empty(self) -> bool:
        """Whether no value can satisfy the interval."""
        if self.low is None or self.high is None:
            return False
        if self.low > self.high:
            return True
        return self.low == self.high and not (
            self.low_inclusive and self.high_inclusive
        )


@dataclass(frozen=True)
class IVMTemplate:
    """An eligible crossfilter query shape: what varies is only the brush.

    The template splits an ``Aggregate(Filter(Scan))`` plan (plus an
    optional HAVING/DISTINCT/ORDER BY/LIMIT suffix) into the parts the
    IVM view is keyed on (table, static conjuncts, group keys, items)
    and the part that changes between interactions (the brush interval).
    Two queries with the same :attr:`view_key` can share one
    materialized view; only the delta between their brush intervals is
    scanned.
    """

    table_name: str
    brush_column: str
    interval: BrushInterval
    #: Conjuncts that do not move with the brush, evaluated once per view.
    static_conjuncts: tuple[Expression, ...]
    aggregate: AggregateNode
    #: Plan nodes above the aggregate, listed bottom-up (aggregate side
    #: first).  Replayed over the materialized rows on every query.
    suffix: tuple[PlanNode, ...]

    @property
    def view_key(self) -> str:
        """Cache key shared by every brush position of this query shape."""
        static = ";".join(sorted(str(c) for c in self.static_conjuncts))
        group = ";".join(str(e) for e in self.aggregate.group_by)
        items = ";".join(
            f"{item.expression}|{item.alias or ''}" for item in self.aggregate.items
        )
        return (
            f"{self.table_name}§brush={self.brush_column}"
            f"§static={static}§group={group}§items={items}"
        )


def _numeric_literal(expr: Expression) -> float | None:
    """The float value of a numeric (non-boolean) literal, else ``None``."""
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float)):
        if isinstance(expr.value, bool):
            return None
        return float(expr.value)
    return None


_FLIPPED_COMPARISONS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _range_conjunct(expr: Expression) -> tuple[str, BrushInterval] | None:
    """Match ``column <op> literal`` / ``BETWEEN`` range constraints.

    Returns ``(column, interval)`` for simple numeric range comparisons
    on a bare column — the shapes a 1-D brush emits — and ``None`` for
    everything else (those conjuncts are static).
    """
    if isinstance(expr, Between) and not expr.negated:
        if not isinstance(expr.expr, ColumnRef):
            return None
        low = _numeric_literal(expr.low)
        high = _numeric_literal(expr.high)
        if low is None or high is None:
            return None
        return expr.expr.name, BrushInterval(low=low, high=high)
    if not isinstance(expr, BinaryOp) or expr.op not in _FLIPPED_COMPARISONS:
        return None
    column, op, value = None, expr.op, None
    if isinstance(expr.left, ColumnRef):
        column, value = expr.left.name, _numeric_literal(expr.right)
    elif isinstance(expr.right, ColumnRef):
        column, value = expr.right.name, _numeric_literal(expr.left)
        op = _FLIPPED_COMPARISONS[op]
    if column is None or value is None:
        return None
    if op == "=":
        return column, BrushInterval(low=value, high=value)
    if op in (">", ">="):
        return column, BrushInterval(low=value, low_inclusive=op == ">=")
    return column, BrushInterval(high=value, high_inclusive=op == "<=")


def _intersect_intervals(a: BrushInterval, b: BrushInterval) -> BrushInterval:
    low, low_inc = a.low, a.low_inclusive
    if b.low is not None and (low is None or b.low > low):
        low, low_inc = b.low, b.low_inclusive
    elif b.low is not None and b.low == low:
        low_inc = low_inc and b.low_inclusive
    high, high_inc = a.high, a.high_inclusive
    if b.high is not None and (high is None or b.high < high):
        high, high_inc = b.high, b.high_inclusive
    elif b.high is not None and b.high == high:
        high_inc = high_inc and b.high_inclusive
    return BrushInterval(low, high, low_inc, high_inc)


def _predicate_conjuncts(expr: Expression) -> list[Expression]:
    """Flatten a top-level AND tree into its conjuncts."""
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _predicate_conjuncts(expr.left) + _predicate_conjuncts(expr.right)
    return [expr]


def _matches_group_key(expr: Expression, aggregate: AggregateNode) -> bool:
    """Whether ``expr`` is constant within every group of ``aggregate``."""
    group_strs = {str(g) for g in aggregate.group_by}
    if str(expr) in group_strs:
        return True
    if isinstance(expr, ColumnRef):
        return any(
            isinstance(g, ColumnRef) and g.name == expr.name
            for g in aggregate.group_by
        )
    return False


def _incrementable_expression(expr: Expression, aggregate: AggregateNode) -> bool:
    """Whether one SELECT-item expression is maintainable from deltas.

    Leaves must be incrementable aggregate calls, literals, or
    group-key expressions (constant per group); combinations are limited
    to the scalar arithmetic the serial aggregate evaluator supports.
    """
    if contains_window(expr):
        return False
    if isinstance(expr, FunctionCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
        if expr.name.upper() not in INCREMENTABLE_AGGREGATES or expr.distinct:
            return False
        if expr.is_star:
            return True
        if len(expr.args) != 1:
            return False
        arg = expr.args[0]
        return not contains_aggregate(arg) and not isinstance(arg, Star)
    if isinstance(expr, BinaryOp):
        return _incrementable_expression(
            expr.left, aggregate
        ) and _incrementable_expression(expr.right, aggregate)
    if isinstance(expr, UnaryOp):
        return expr.op == "-" and _incrementable_expression(expr.operand, aggregate)
    if isinstance(expr, Literal):
        return True
    # A bare non-aggregate expression: safe only when it is one of the
    # group keys (the serial executor emits each group's first-row value,
    # which for a key expression *is* the group's key value).
    return not contains_aggregate(expr) and _matches_group_key(expr, aggregate)


def ivm_template(plan: LogicalPlan) -> IVMTemplate | None:
    """Match the IVM-eligible shape ``suffix* → Aggregate → Filter → Scan``.

    Returns ``None`` when the plan is not a single-table filtered
    aggregation, when the WHERE clause has no numeric range conjunct to
    act as the brush, or when any SELECT item is not maintainable from
    deltas (non-incrementable aggregate, DISTINCT aggregate, window
    function, expression that is neither a group key nor an aggregate).
    """
    if plan.explain:
        return None
    suffix: list[PlanNode] = []
    node = plan.root
    # Any FilterNode above the aggregate is necessarily HAVING: WHERE
    # filters sit below the AggregateNode, where this walk stops.
    while isinstance(node, (LimitNode, SortNode, DistinctNode, FilterNode)):
        suffix.append(node)
        node = node.child
    if not isinstance(node, AggregateNode):
        return None
    aggregate = node
    if not all(
        _incrementable_expression(item.expression, aggregate)
        for item in aggregate.items
    ):
        return None
    if any(contains_aggregate(g) or contains_window(g) for g in aggregate.group_by):
        return None
    where = aggregate.child
    if not isinstance(where, FilterNode) or not isinstance(where.child, ScanNode):
        return None
    scan = where.child
    brush_column: str | None = None
    interval = BrushInterval()
    static: list[Expression] = []
    for conjunct in _predicate_conjuncts(where.predicate):
        matched = _range_conjunct(conjunct)
        if matched is None:
            static.append(conjunct)
            continue
        column, conjunct_interval = matched
        if brush_column is None:
            brush_column = column
        if column == brush_column:
            interval = _intersect_intervals(interval, conjunct_interval)
        else:
            # Range constraints on a second column: a 2-D brush.  The
            # first column stays the tile dimension; the others fold
            # into the static conjuncts (a new view per distinct value).
            static.append(conjunct)
    if brush_column is None:
        return None
    return IVMTemplate(
        table_name=scan.table_name,
        brush_column=brush_column,
        interval=interval,
        static_conjuncts=tuple(static),
        aggregate=aggregate,
        suffix=tuple(suffix),
    )
