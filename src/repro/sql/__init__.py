"""An in-memory, columnar SQL engine.

This package is the stand-in for the backend DBMS (PostgreSQL / DuckDB)
used by the paper.  It implements the OLAP-style SQL subset that VegaPlus's
query rewriter emits: single-table SELECT queries with expressions,
filtering, grouping and aggregation, sorting, limits, window functions and
nested sub-queries in the FROM clause, plus ``EXPLAIN`` cost estimation.

The public entry point is :class:`repro.sql.engine.Database`, which exposes
a DuckDB-like API::

    db = Database()
    db.register_rows("flights", rows)
    result = db.execute("SELECT carrier, COUNT(*) AS n FROM flights GROUP BY carrier")
    result.to_rows()
"""

from repro.sql.engine import Database, QueryResult
from repro.sql.morsel import MorselPool
from repro.sql.parser import parse_sql
from repro.sql.tokenizer import tokenize
from repro.sql.explain import QueryCostEstimate

__all__ = [
    "Database",
    "QueryResult",
    "MorselPool",
    "parse_sql",
    "tokenize",
    "QueryCostEstimate",
]
