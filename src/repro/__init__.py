"""repro: a reproduction of VegaPlus (SIGMOD 2024).

"Optimizing Dataflow Systems for Scalable Interactive Visualization"
(Yang, Joo, Yerramreddy, Moritz, Battle; Proc. ACM Manag. Data 2(1),
Article 21) describes VegaPlus, a system that scales interactive Vega
dashboards by partitioning dataflow execution between the browser and a
backend DBMS using a learned pairwise plan comparator.

This package re-implements the full stack in Python:

* :mod:`repro.sql` - an in-memory columnar SQL engine (the DBMS substrate),
* :mod:`repro.backends` - the pluggable server-side backend seam (the
  embedded engine plus a stdlib ``sqlite3`` backend),
* :mod:`repro.dataflow` / :mod:`repro.vega` - a reactive Vega-like dataflow
  runtime and specification layer (the client substrate),
* :mod:`repro.expr` - the Vega expression language and its SQL translation,
* :mod:`repro.rewrite` - query rewriting into VDT operators,
* :mod:`repro.net` - the middleware, caches, codecs and network model,
* :mod:`repro.server` - the concurrent serving runtime (per-client
  sessions, single-flight request scheduler, admission statistics),
* :mod:`repro.ml` - from-scratch RankSVM and Random Forest,
* :mod:`repro.core` - the VegaPlus optimizer (enumeration, encoding,
  pairwise comparators, session consolidation) and the end-to-end system,
* :mod:`repro.baselines` - native Vega and VegaFusion-like baselines,
* :mod:`repro.bench` - the benchmark suite (7 dashboard templates,
  interaction simulation, per-table/figure experiment runners).

Quickstart::

    from repro import VegaPlusSystem, create_backend
    from repro.datasets import generate_dataset
    from repro.bench.templates import interactive_histogram

    rows = generate_dataset("flights", 100_000)
    backend = create_backend("embedded")   # or "sqlite"
    backend.register_rows("flights", rows)
    template = interactive_histogram()
    spec = template.build_spec("flights", {"value": "delay"})
    system = VegaPlusSystem(spec, backend)
    system.optimize()
    print(system.initialize().total_seconds)
"""

from repro.sql import Database
from repro.backends import (
    EmbeddedBackend,
    SQLBackend,
    SqliteBackend,
    as_backend,
    backend_names,
    create_backend,
)
from repro.core import (
    VegaPlusSystem,
    VegaPlusOptimizer,
    ExecutionPlan,
    PlanEnumerator,
    PlanEncoder,
    RankSVMComparator,
    RandomForestComparator,
    HeuristicComparator,
    RandomComparator,
)
from repro.server import ClientSession, RequestScheduler, SessionManager
from repro.vega import VegaRuntime
from repro.baselines import VegaNativeSystem, VegaFusionSystem

__version__ = "0.4.0"

__all__ = [
    "Database",
    "SQLBackend",
    "EmbeddedBackend",
    "SqliteBackend",
    "as_backend",
    "backend_names",
    "create_backend",
    "VegaPlusSystem",
    "VegaPlusOptimizer",
    "ExecutionPlan",
    "PlanEnumerator",
    "PlanEncoder",
    "RankSVMComparator",
    "RandomForestComparator",
    "HeuristicComparator",
    "RandomComparator",
    "VegaRuntime",
    "VegaNativeSystem",
    "VegaFusionSystem",
    "ClientSession",
    "RequestScheduler",
    "SessionManager",
    "__version__",
]
