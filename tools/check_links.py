#!/usr/bin/env python3
"""Fail on broken relative links in Markdown files.

Usage::

    python tools/check_links.py README.md docs

Every ``[text](target)`` whose target is not an absolute URL or a pure
anchor must resolve to an existing file or directory, relative to the
Markdown file containing it (anchors are stripped before the check).
Targets that escape the repository root (e.g. GitHub-served
``../../actions/...`` badge paths) cannot be validated on disk and are
skipped.  Directories are walked recursively for ``*.md`` files.  Exits
non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Links resolving outside this root are GitHub-side paths, not files.
_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links; images share the syntax (leading ``!`` ignored).
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not relative file links.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(arguments: list[str]) -> list[Path]:
    """Expand the CLI arguments into Markdown file paths."""
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def broken_links(markdown_path: Path) -> list[tuple[int, str]]:
    """(line number, target) for each unresolvable relative link."""
    problems: list[tuple[int, str]] = []
    for line_number, line in enumerate(
        markdown_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (markdown_path.parent / relative).resolve()
            if not resolved.is_relative_to(_REPO_ROOT):
                continue
            if not resolved.exists():
                problems.append((line_number, target))
    return problems


def main(arguments: list[str]) -> int:
    if not arguments:
        print("usage: check_links.py <file-or-directory> ...", file=sys.stderr)
        return 2
    files = markdown_files(arguments)
    failures = 0
    for markdown_path in files:
        if not markdown_path.exists():
            print(f"MISSING FILE {markdown_path}", file=sys.stderr)
            failures += 1
            continue
        for line_number, target in broken_links(markdown_path):
            print(f"BROKEN {markdown_path}:{line_number}: {target}", file=sys.stderr)
            failures += 1
    checked = len(files)
    if failures:
        print(f"{failures} broken link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"OK: {checked} markdown file(s), no broken relative links")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
