#!/usr/bin/env python3
"""Fail on broken relative links in Markdown files and Python docstrings.

Usage::

    python tools/check_links.py README.md docs src

Every ``[text](target)`` whose target is not an absolute URL or a pure
anchor must resolve to an existing file or directory, relative to the
Markdown file containing it (anchors are stripped before the check).
Targets that escape the repository root (e.g. GitHub-served
``../../actions/...`` badge paths) cannot be validated on disk and are
skipped.  Directories are walked recursively for ``*.md`` files.

Python files are checked too: every ``*.md`` path mentioned in a module
docstring (e.g. ``docs/EXPERIMENTS.md records ...``) must exist — a
docstring promising documentation that was never written is exactly the
drift this would have caught.  A bare reference (``ARCHITECTURE.md``)
resolves against the repository root, ``docs/``, and the module's own
directory;
a reference containing ``/`` resolves against the repository root and
the module's directory.  Directories passed on the command line are
walked recursively for ``*.py`` as well.

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

#: Links resolving outside this root are GitHub-side paths, not files.
_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links; images share the syntax (leading ``!`` ignored).
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Markdown file references inside docstrings (``docs/FOO.md``, ``BAR.md``).
_DOCSTRING_MD_PATTERN = re.compile(r"(?<![\w/.-])([\w./-]+\.md)\b")

#: Targets that are not relative file links.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def source_files(arguments: list[str]) -> list[Path]:
    """Expand the CLI arguments into Markdown and Python file paths."""
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def broken_links(markdown_path: Path) -> list[tuple[int, str]]:
    """(line number, target) for each unresolvable relative link."""
    problems: list[tuple[int, str]] = []
    for line_number, line in enumerate(
        markdown_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (markdown_path.parent / relative).resolve()
            if not resolved.is_relative_to(_REPO_ROOT):
                continue
            if not resolved.exists():
                problems.append((line_number, target))
    return problems


def docstring_references(python_path: Path) -> list[str]:
    """Markdown paths referenced from the module's docstring."""
    try:
        tree = ast.parse(python_path.read_text(encoding="utf-8"))
    except SyntaxError:
        return []
    docstring = ast.get_docstring(tree) or ""
    return _DOCSTRING_MD_PATTERN.findall(docstring)


def broken_docstring_links(python_path: Path) -> list[str]:
    """Docstring ``*.md`` references that resolve to no file on disk."""
    problems: list[str] = []
    for reference in docstring_references(python_path):
        candidates = [_REPO_ROOT / reference, python_path.parent / reference]
        if "/" not in reference:
            candidates.append(_REPO_ROOT / "docs" / reference)
        if not any(candidate.exists() for candidate in candidates):
            problems.append(reference)
    return problems


def main(arguments: list[str]) -> int:
    if not arguments:
        print("usage: check_links.py <file-or-directory> ...", file=sys.stderr)
        return 2
    files = source_files(arguments)
    failures = 0
    for path in files:
        if not path.exists():
            print(f"MISSING FILE {path}", file=sys.stderr)
            failures += 1
            continue
        if path.suffix == ".py":
            for reference in broken_docstring_links(path):
                print(f"BROKEN DOCSTRING REF {path}: {reference}", file=sys.stderr)
                failures += 1
            continue
        for line_number, target in broken_links(path):
            print(f"BROKEN {path}:{line_number}: {target}", file=sys.stderr)
            failures += 1
    checked = len(files)
    if failures:
        print(f"{failures} broken link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"OK: {checked} file(s), no broken relative links or docstring refs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
