#!/usr/bin/env python3
"""CLI over the persistent benchmark results database.

The store and comparison engine live in :mod:`repro.bench.resultsdb`;
this tool exposes them as four verbs::

    python tools/benchdb.py ingest BENCH_smoke_embedded.json [more.json ...]
    python tools/benchdb.py list
    python tools/benchdb.py compare [--run ID] [--baseline-window N] \
        [--threshold 0.5] [--min-seconds 0.002]
    python tools/benchdb.py trend "test_figure10_concurrent_sessions[cold_start_burst][embedded]"
    python tools/benchdb.py trend "test_figure14_serving_tier[sharded][embedded]" \
        --metric throughput_rps

``trend`` plots one experiment metric across the stored runs;
``--metric`` selects any recorded metric column — wall/latency seconds
(``median_seconds``, ``p95_seconds``, ``p99_seconds``, …) or rates such
as the fig14 serving tier's ``throughput_rps``.

``ingest`` records one *run* (all files of one benchmark invocation —
raw ``--benchmark-json`` output and/or compact summaries) with its git
SHA, timestamp, machine fingerprint, backend set and scale, plus one
``task_results`` row per experiment.

``compare`` is the regression gate CI runs: the selected run (default:
the latest) is checked per experiment against the median of the last N
runs recorded **on the same machine fingerprint**.  Exit status is 0
when no experiment regresses beyond the threshold, 1 when at least one
does, 2 on usage errors — so ``benchdb ingest ... && benchdb compare``
is the whole gate.  A fresh database (no trajectory yet) passes: every
experiment is reported as ``new``.

The default database lives at ``benchmarks/results/bench_results.db``
(gitignored; CI persists it across workflow runs — see
``docs/REPRODUCING.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
# Make `python tools/benchdb.py` work on a fresh checkout, no install or
# PYTHONPATH needed.
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.harness import run_metadata  # noqa: E402
from repro.bench.reporting import format_comparison, format_runs, format_trend  # noqa: E402
from repro.bench.resultsdb import METRIC_COLUMNS, ResultsDB  # noqa: E402

DEFAULT_DB = _REPO_ROOT / ResultsDB.DEFAULT_PATH


def cmd_ingest(db: ResultsDB, arguments: argparse.Namespace) -> int:
    metadata = run_metadata(backend=arguments.backend)
    if arguments.git_sha:
        metadata["git_sha"] = arguments.git_sha
    if arguments.machine:
        metadata["machine"] = arguments.machine
    else:
        # Prefer the fingerprint recorded inside raw BENCH json (the
        # machine that *ran* the benchmarks) over the ingesting host's.
        metadata.pop("machine", None)
        metadata.pop("python", None)
    if "REPRO_BENCH_SCALE" not in os.environ:
        # Same for the scale: the value recorded by the benchmark run
        # beats this process's default.
        metadata.pop("bench_scale", None)
    run_id = db.ingest_files(arguments.json, metadata=metadata)
    run = db.run(run_id)
    print(
        f"ingested run {run.run_id}: {run.n_results} experiment(s) from "
        f"{run.source} (machine {run.machine}, git {run.git_sha or '?'})"
    )
    return 0


def cmd_list(db: ResultsDB, arguments: argparse.Namespace) -> int:
    runs = db.runs(machine=arguments.machine)
    if not runs:
        print("no runs recorded yet")
        return 0
    print(format_runs(runs))
    return 0


def cmd_compare(db: ResultsDB, arguments: argparse.Namespace) -> int:
    if db.latest_run_id() is None:
        print("error: results database holds no runs yet", file=sys.stderr)
        return 2
    report = db.compare(
        run_id=arguments.run,
        baseline_window=arguments.baseline_window,
        threshold=arguments.threshold,
        min_seconds=arguments.min_seconds,
    )
    print(format_comparison(report))
    n_new = len(report.new_experiments)
    n_better = len(report.improvements)
    n_worse = len(report.regressions)
    print(
        f"\n{len(report.deltas)} experiment(s): {n_worse} regression(s), "
        f"{n_better} improvement(s), {n_new} without trajectory"
    )
    if not report.passed:
        print("FAIL: p95/median regression(s) beyond threshold", file=sys.stderr)
        return 1
    print("PASS")
    return 0


def cmd_trend(db: ResultsDB, arguments: argparse.Namespace) -> int:
    points = db.trend(
        arguments.experiment, metric=arguments.metric, machine=arguments.machine
    )
    if not points:
        known = db.experiments()
        print(
            f"no data for {arguments.experiment!r} ({arguments.metric}); "
            f"{len(known)} experiment(s) recorded",
            file=sys.stderr,
        )
        return 2
    print(format_trend(points, arguments.experiment, arguments.metric))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="benchdb",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--db",
        type=Path,
        default=DEFAULT_DB,
        help=f"results database path (default: {DEFAULT_DB})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser("ingest", help="record BENCH json file(s) as one run")
    ingest.add_argument("json", nargs="+", type=Path, help="raw or summary BENCH json")
    ingest.add_argument("--git-sha", help="override the run's git SHA")
    ingest.add_argument("--machine", help="override the machine fingerprint")
    ingest.add_argument("--backend", help="record the backend this run targeted")

    list_runs = commands.add_parser("list", help="list recorded runs")
    list_runs.add_argument("--machine", help="only runs on this fingerprint")

    compare = commands.add_parser(
        "compare", help="gate the latest run against its trajectory"
    )
    compare.add_argument("--run", type=int, help="run id to compare (default: latest)")
    compare.add_argument(
        "--baseline-window",
        type=int,
        default=5,
        help="trajectory length the baseline median is taken over (default: 5)",
    )
    compare.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative regression threshold, 0.25 = +25%% (default: 0.25)",
    )
    compare.add_argument(
        "--min-seconds",
        type=float,
        default=0.002,
        help="absolute delta floor below which jitter never fails the gate",
    )

    trend = commands.add_parser("trend", help="one experiment's metric over time")
    trend.add_argument("experiment", help="experiment key, e.g. 'test_x[scenario][backend]'")
    trend.add_argument(
        "--metric",
        default="p95_seconds",
        choices=METRIC_COLUMNS,
        help=(
            "metric column to plot (default: p95_seconds; e.g. p99_seconds "
            "for tail latency, throughput_rps for serving throughput)"
        ),
    )
    trend.add_argument("--machine", help="only runs on this fingerprint")
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    handlers = {
        "ingest": cmd_ingest,
        "list": cmd_list,
        "compare": cmd_compare,
        "trend": cmd_trend,
    }
    with ResultsDB(arguments.db) as db:
        try:
            return handlers[arguments.command](db, arguments)
        except (ValueError, OSError, KeyError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2


if __name__ == "__main__":
    raise SystemExit(main())
