#!/usr/bin/env python3
"""Condense pytest-benchmark JSON into a compact reference summary.

The raw ``--benchmark-json`` output weighs in at >1000 lines per run
(full machine info, commit info, every timing sample).  The committed
reference at ``benchmarks/results/BENCH_smoke_summary.json`` keeps only
what trend-tracking needs: one entry per experiment with its median (and
min/mean) seconds plus the recorded ``extra_info`` (backend, scale).

Usage::

    python tools/summarize_bench.py raw1.json [raw2.json ...] -o summary.json

Multiple raw files merge into one summary (e.g. one benchmark run per
backend); an experiment appearing in several files is keyed as
``<name>[<backend>]`` so the axes stay distinguishable.  For
backend-independent experiments that repeat across input files under the
same key (the SQL kernel micro-benchmarks), the first file listed wins
and the duplicates are reported on stderr.

The per-experiment entry layout — which percentiles exist, what the
lifted scalar metrics (``coalescing_rate``, ``pruning_rate``,
``speedup_vs_serial``, ``throughput_rps``) and structured extras (``policy``, ``regret``,
``accuracy_over_time``) are called — is defined **once** in
:mod:`repro.bench.resultsdb` and shared with the persistent results
database, so the committed summary and ``tools/benchdb.py`` always
agree on field names (see ``docs/REPRODUCING.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
# Works on a fresh checkout, no install or PYTHONPATH needed.
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.resultsdb import SUMMARY_SCHEMA, iter_raw_experiments  # noqa: E402


def summarize(raw_paths: list[Path]) -> dict:
    """Build the compact summary dictionary from raw benchmark files."""
    experiments: dict[str, dict] = {}
    machines: set[str] = set()
    pythons: set[str] = set()
    for raw_path in raw_paths:
        raw = json.loads(raw_path.read_text(encoding="utf-8"))
        machine = raw.get("machine_info", {})
        cpu = machine.get("cpu", {})
        if machine:
            machines.add(f"{cpu.get('brand_raw', machine.get('machine', '?'))}")
            pythons.add(machine.get("python_version", "?"))
        for key, entry in iter_raw_experiments(raw):
            if key in experiments:
                print(
                    f"note: {key} already summarised; keeping the first "
                    f"occurrence, ignoring the one in {raw_path}",
                    file=sys.stderr,
                )
                continue
            experiments[key] = entry
    return {
        "schema": SUMMARY_SCHEMA,
        "machine": sorted(machines),
        "python": sorted(pythons),
        "experiments": dict(sorted(experiments.items())),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("raw", nargs="+", type=Path, help="raw pytest-benchmark JSON files")
    parser.add_argument("-o", "--output", type=Path, required=True, help="summary output path")
    arguments = parser.parse_args()
    summary = summarize(arguments.raw)
    arguments.output.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {arguments.output} ({len(summary['experiments'])} experiments)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
