#!/usr/bin/env python3
"""Condense pytest-benchmark JSON into a compact reference summary.

The raw ``--benchmark-json`` output weighs in at >1000 lines per run
(full machine info, commit info, every timing sample).  The committed
reference at ``benchmarks/results/BENCH_smoke_summary.json`` keeps only
what trend-tracking needs: one entry per experiment with its median (and
min/mean) seconds plus the recorded ``extra_info`` (backend, scale).

Usage::

    python tools/summarize_bench.py raw1.json [raw2.json ...] -o summary.json

Multiple raw files merge into one summary (e.g. one benchmark run per
backend); an experiment appearing in several files is keyed as
``<name>[<backend>]`` so the axes stay distinguishable.  For
backend-independent experiments that repeat across input files under the
same key (the SQL kernel micro-benchmarks), the first file listed wins
and the duplicates are reported on stderr.

Experiments that record latency percentiles (the concurrency benchmarks
put ``extra_info["latency_percentiles"] = {"p50": ..., "p95": ...,
"p99": ...}``) get those lifted to a top-level ``latency_percentiles``
entry, alongside ``coalescing_rate`` when present, so the trend summary
carries tail-latency data without digging through ``extra_info``.

The adaptive-policy benchmarks (``bench_fig11_adaptive.py``) similarly
get ``policy`` (per-policy percentiles and plan ids), ``regret``
(replan counters and the static/adaptive p95 speedup) and
``accuracy_over_time`` (the online comparator's prequential pairwise
accuracy curve) lifted to top-level entries; the partitioned scale sweep
(``bench_fig12_scale.py``) gets ``pruning_rate`` (zone-map partition
pruning) and ``speedup_vs_serial`` lifted the same way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def summarize(raw_paths: list[Path]) -> dict:
    """Build the compact summary dictionary from raw benchmark files."""
    experiments: dict[str, dict] = {}
    machines: set[str] = set()
    pythons: set[str] = set()
    for raw_path in raw_paths:
        raw = json.loads(raw_path.read_text(encoding="utf-8"))
        machine = raw.get("machine_info", {})
        cpu = machine.get("cpu", {})
        if machine:
            machines.add(f"{cpu.get('brand_raw', machine.get('machine', '?'))}")
            pythons.add(machine.get("python_version", "?"))
        for benchmark in raw.get("benchmarks", []):
            extra = benchmark.get("extra_info", {})
            name = benchmark["name"]
            backend = extra.get("backend")
            key = f"{name}[{backend}]" if backend else name
            if key in experiments:
                print(
                    f"note: {key} already summarised; keeping the first "
                    f"occurrence, ignoring the one in {raw_path}",
                    file=sys.stderr,
                )
                continue
            stats = benchmark["stats"]
            entry = {
                "median_seconds": round(stats["median"], 6),
                "min_seconds": round(stats["min"], 6),
                "mean_seconds": round(stats["mean"], 6),
                "rounds": stats["rounds"],
                "extra_info": extra,
            }
            percentiles = extra.get("latency_percentiles")
            if isinstance(percentiles, dict):
                entry["latency_percentiles"] = {
                    name: round(float(value), 6)
                    for name, value in sorted(percentiles.items())
                }
            if "coalescing_rate" in extra:
                entry["coalescing_rate"] = round(float(extra["coalescing_rate"]), 4)
            if "pruning_rate" in extra:
                entry["pruning_rate"] = round(float(extra["pruning_rate"]), 4)
            if "speedup_vs_serial" in extra:
                entry["speedup_vs_serial"] = round(float(extra["speedup_vs_serial"]), 3)
            if isinstance(extra.get("policy"), dict):
                entry["policy"] = extra["policy"]
            if isinstance(extra.get("regret"), dict):
                entry["regret"] = extra["regret"]
            accuracy = extra.get("accuracy_over_time")
            if isinstance(accuracy, list):
                entry["accuracy_over_time"] = [round(float(v), 4) for v in accuracy]
            experiments[key] = entry
    return {
        "schema": "bench-summary/v1",
        "machine": sorted(machines),
        "python": sorted(pythons),
        "experiments": dict(sorted(experiments.items())),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("raw", nargs="+", type=Path, help="raw pytest-benchmark JSON files")
    parser.add_argument("-o", "--output", type=Path, required=True, help="summary output path")
    arguments = parser.parse_args()
    summary = summarize(arguments.raw)
    arguments.output.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {arguments.output} ({len(summary['experiments'])} experiments)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
