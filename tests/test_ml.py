"""Tests for the from-scratch ML models."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import (
    DecisionTreeClassifier,
    MinMaxScaler,
    RandomForestClassifier,
    RankSVM,
    accuracy_score,
    confusion_counts,
    train_test_split,
)


def make_linear_pairs(n: int = 400, seed: int = 0):
    """Difference vectors whose label depends on a known linear rule.

    Label 1 (first plan faster) when the weighted sum of the difference is
    negative — exactly the structure RankSVM must recover.
    """
    rng = np.random.default_rng(seed)
    true_weights = np.array([2.0, -1.0, 0.5, 0.0])
    differences = rng.normal(size=(n, 4))
    labels = (differences @ true_weights < 0).astype(int)
    return differences, labels


# --------------------------------------------------------------------------- #
# Preprocessing and metrics
# --------------------------------------------------------------------------- #


def test_minmax_scaler_scales_to_unit_range():
    data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
    scaled = MinMaxScaler().fit_transform(data)
    assert scaled.min() == 0.0 and scaled.max() == 1.0


def test_minmax_scaler_constant_feature_maps_to_zero():
    data = np.array([[1.0, 5.0], [1.0, 6.0]])
    scaled = MinMaxScaler().fit_transform(data)
    assert np.all(scaled[:, 0] == 0.0)


def test_minmax_scaler_errors():
    with pytest.raises(ModelError):
        MinMaxScaler().transform(np.zeros((2, 2)))
    with pytest.raises(ModelError):
        MinMaxScaler().fit(np.zeros(3))


def test_train_test_split_proportions():
    features = np.arange(100).reshape(50, 2)
    labels = np.arange(50)
    x_train, x_test, y_train, y_test = train_test_split(features, labels, test_fraction=0.4, seed=1)
    assert len(x_train) == 30 and len(x_test) == 20
    assert set(y_train) | set(y_test) == set(labels)
    with pytest.raises(ModelError):
        train_test_split(features, labels[:-1])
    with pytest.raises(ModelError):
        train_test_split(features, labels, test_fraction=1.5)


def test_metrics():
    y_true = np.array([1, 0, 1, 1])
    y_pred = np.array([1, 0, 0, 1])
    assert accuracy_score(y_true, y_pred) == 0.75
    counts = confusion_counts(y_true, y_pred)
    assert counts == {
        "true_positive": 2,
        "true_negative": 1,
        "false_positive": 0,
        "false_negative": 1,
    }
    with pytest.raises(ModelError):
        accuracy_score(y_true, y_pred[:-1])


# --------------------------------------------------------------------------- #
# RankSVM
# --------------------------------------------------------------------------- #


def test_ranksvm_learns_linear_rule():
    differences, labels = make_linear_pairs()
    model = RankSVM(epochs=100, seed=0)
    model.fit(differences, labels)
    predictions = model.predict(differences)
    assert accuracy_score(labels, predictions) > 0.9


def test_ranksvm_cost_orders_plans():
    differences, labels = make_linear_pairs()
    model = RankSVM(epochs=100, seed=0).fit(differences, labels)
    fast = np.array([0.0, 5.0, 0.0, 0.0])   # negative contribution of w -> low cost
    slow = np.array([5.0, 0.0, 0.0, 0.0])
    assert model.predict_pair(fast, slow) in (0, 1)
    costs = model.cost(np.vstack([fast, slow]))
    assert costs.shape == (2,)


def test_ranksvm_feature_weights_exposed():
    differences, labels = make_linear_pairs()
    model = RankSVM(epochs=50).fit(differences, labels)
    weights = model.feature_weights()
    assert weights.shape == (4,)
    # The learned weights must correlate with the generating rule.
    true_weights = np.array([2.0, -1.0, 0.5, 0.0])
    correlation = np.corrcoef(weights, true_weights)[0, 1]
    assert abs(correlation) > 0.8


def test_ranksvm_errors():
    model = RankSVM()
    with pytest.raises(ModelError):
        model.predict(np.zeros((1, 3)))
    with pytest.raises(ModelError):
        model.cost(np.zeros(3))
    with pytest.raises(ModelError):
        model.fit(np.zeros((0, 3)), np.zeros(0))
    with pytest.raises(ModelError):
        model.fit(np.zeros((5, 3)), np.zeros(4))
    with pytest.raises(ModelError):
        RankSVM(learning_rate=-1)


# --------------------------------------------------------------------------- #
# Decision tree and random forest
# --------------------------------------------------------------------------- #


def make_nonlinear(n: int = 400, seed: int = 1):
    rng = np.random.default_rng(seed)
    features = rng.uniform(-1, 1, size=(n, 3))
    labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int)  # XOR rule
    return features, labels


def test_decision_tree_fits_xor():
    features, labels = make_nonlinear()
    tree = DecisionTreeClassifier(max_depth=12, min_samples_split=2, seed=0).fit(features, labels)
    assert accuracy_score(labels, tree.predict(features)) > 0.9
    assert tree.depth() >= 2
    assert tree.feature_importances_ is not None
    # Feature 2 is irrelevant to the XOR rule.
    assert tree.feature_importances_[2] < 0.2


def test_decision_tree_pure_labels_returns_leaf():
    features = np.array([[0.0], [1.0], [2.0]])
    labels = np.array([1, 1, 1])
    tree = DecisionTreeClassifier().fit(features, labels)
    assert list(tree.predict(features)) == [1, 1, 1]
    assert tree.depth() == 0


def test_decision_tree_errors():
    with pytest.raises(ModelError):
        DecisionTreeClassifier(max_depth=0)
    with pytest.raises(ModelError):
        DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ModelError):
        DecisionTreeClassifier().predict(np.zeros((1, 2)))


def test_random_forest_beats_single_shallow_tree_on_xor():
    features, labels = make_nonlinear()
    tree = DecisionTreeClassifier(max_depth=2, seed=0).fit(features, labels)
    forest = RandomForestClassifier(n_estimators=20, max_depth=6, seed=0).fit(features, labels)
    tree_accuracy = accuracy_score(labels, tree.predict(features))
    forest_accuracy = accuracy_score(labels, forest.predict(features))
    assert forest_accuracy > tree_accuracy
    assert forest_accuracy > 0.9


def test_random_forest_predict_pair_and_importances():
    differences, labels = make_linear_pairs()
    forest = RandomForestClassifier(n_estimators=10, seed=0).fit(differences, labels)
    assert forest.predict_pair(np.zeros(4), np.ones(4)) in (0, 1)
    assert forest.feature_importances_ is not None
    assert forest.feature_importances_.shape == (4,)
    assert forest.feature_importances_.sum() == pytest.approx(1.0)


def test_random_forest_errors():
    with pytest.raises(ModelError):
        RandomForestClassifier(n_estimators=0)
    with pytest.raises(ModelError):
        RandomForestClassifier().predict(np.zeros((1, 2)))
    with pytest.raises(ModelError):
        RandomForestClassifier(max_features="bogus").fit(np.zeros((4, 2)), np.array([0, 1, 0, 1]))


def test_models_are_deterministic_given_seed():
    differences, labels = make_linear_pairs()
    first = RankSVM(epochs=30, seed=5).fit(differences, labels).feature_weights()
    second = RankSVM(epochs=30, seed=5).fit(differences, labels).feature_weights()
    assert np.allclose(first, second)
    forest_a = RandomForestClassifier(n_estimators=5, seed=9).fit(differences, labels)
    forest_b = RandomForestClassifier(n_estimators=5, seed=9).fit(differences, labels)
    assert np.array_equal(forest_a.predict(differences), forest_b.predict(differences))
