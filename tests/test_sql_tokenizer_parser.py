"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.errors import ParseError, TokenizeError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Star,
    SubquerySource,
    TableSource,
    WindowFunction,
    contains_aggregate,
    referenced_columns,
)
from repro.sql.parser import parse_sql
from repro.sql.tokenizer import TokenType, tokenize


# --------------------------------------------------------------------------- #
# Tokenizer
# --------------------------------------------------------------------------- #


def test_tokenize_basic_query():
    tokens = tokenize("SELECT a FROM t WHERE b >= 1.5")
    kinds = [t.ttype for t in tokens]
    assert kinds[-1] is TokenType.EOF
    values = [t.value for t in tokens[:-1]]
    assert values == ["SELECT", "a", "FROM", "t", "WHERE", "b", ">=", "1.5"]


def test_tokenize_string_with_escaped_quote():
    tokens = tokenize("SELECT 'it''s' FROM t")
    strings = [t for t in tokens if t.ttype is TokenType.STRING]
    assert strings[0].value == "it's"


def test_tokenize_scientific_number():
    tokens = tokenize("SELECT 1.5e-3 FROM t")
    numbers = [t for t in tokens if t.ttype is TokenType.NUMBER]
    assert numbers[0].value == "1.5e-3"


def test_tokenize_unterminated_string_raises():
    with pytest.raises(TokenizeError):
        tokenize("SELECT 'oops FROM t")


def test_tokenize_unexpected_character_raises():
    with pytest.raises(TokenizeError) as excinfo:
        tokenize("SELECT a ? b FROM t")
    assert excinfo.value.position is not None


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #


def test_parse_select_star():
    stmt = parse_sql("SELECT * FROM flights")
    assert isinstance(stmt.items[0].expression, Star)
    assert isinstance(stmt.source, TableSource)
    assert stmt.source.name == "flights"


def test_parse_aliases_and_group_order_limit():
    stmt = parse_sql(
        "SELECT carrier, COUNT(*) AS n FROM flights "
        "GROUP BY carrier ORDER BY n DESC LIMIT 10 OFFSET 2"
    )
    assert stmt.items[1].alias == "n"
    assert stmt.group_by == (ColumnRef("carrier"),)
    assert stmt.order_by[0].descending is True
    assert stmt.limit == 10
    assert stmt.offset == 2


def test_parse_where_precedence_and_or():
    stmt = parse_sql("SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3")
    assert isinstance(stmt.where, BinaryOp)
    assert stmt.where.op == "OR"
    assert stmt.where.left.op == "AND"


def test_parse_arithmetic_precedence():
    stmt = parse_sql("SELECT a + b * 2 FROM t")
    expr = stmt.items[0].expression
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parse_in_between_isnull_like():
    stmt = parse_sql(
        "SELECT a FROM t WHERE a IN (1, 2) AND b BETWEEN 0 AND 5 "
        "AND c IS NOT NULL AND d LIKE 'x%'"
    )
    found = list(_flatten_conjunction(stmt.where))
    assert any(isinstance(e, InList) for e in found)
    assert any(isinstance(e, Between) for e in found)
    assert any(isinstance(e, IsNull) and e.negated for e in found)


def test_parse_not_in():
    stmt = parse_sql("SELECT a FROM t WHERE a NOT IN (1, 2)")
    assert isinstance(stmt.where, InList)
    assert stmt.where.negated


def test_parse_case_expression():
    stmt = parse_sql("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END AS label FROM t")
    expr = stmt.items[0].expression
    assert isinstance(expr, CaseExpression)
    assert expr.default == Literal("small")


def test_parse_subquery_source():
    stmt = parse_sql("SELECT a FROM (SELECT a FROM t WHERE a > 1) AS sub")
    assert isinstance(stmt.source, SubquerySource)
    assert stmt.source.alias == "sub"
    assert stmt.source.query.where is not None


def test_parse_window_function():
    stmt = parse_sql("SELECT SUM(x) OVER (PARTITION BY g ORDER BY y) AS total FROM t")
    expr = stmt.items[0].expression
    assert isinstance(expr, WindowFunction)
    assert expr.partition_by == (ColumnRef("g"),)
    assert expr.order_by[0].expression == ColumnRef("y")


def test_parse_count_distinct_and_star():
    stmt = parse_sql("SELECT COUNT(DISTINCT a), COUNT(*) FROM t")
    first = stmt.items[0].expression
    second = stmt.items[1].expression
    assert isinstance(first, FunctionCall) and first.distinct
    assert isinstance(second, FunctionCall) and second.is_star


def test_parse_explain_flag():
    stmt = parse_sql("EXPLAIN SELECT a FROM t")
    assert stmt.explain is True


def test_parse_cast():
    stmt = parse_sql("SELECT CAST(a AS FLOAT) FROM t")
    expr = stmt.items[0].expression
    assert isinstance(expr, FunctionCall)
    assert expr.name == "CAST_FLOAT"


def test_parse_qualified_column():
    stmt = parse_sql("SELECT t.a FROM flights AS t")
    expr = stmt.items[0].expression
    assert expr == ColumnRef("a", table="t")


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_sql("SELECT FROM t")
    with pytest.raises(ParseError):
        parse_sql("SELECT a FROM t WHERE")
    with pytest.raises(ParseError):
        parse_sql("SELECT a FROM t GROUP a")
    with pytest.raises(ParseError):
        parse_sql("SELECT a FROM t LIMIT x")
    with pytest.raises(ParseError):
        parse_sql("SELECT a FROM t extra garbage ,")


def test_statement_round_trips_through_str():
    sql = "SELECT carrier, COUNT(*) AS n FROM flights WHERE delay > 10 GROUP BY carrier"
    stmt = parse_sql(sql)
    reparsed = parse_sql(str(stmt))
    assert str(reparsed) == str(stmt)


def test_ast_helpers():
    stmt = parse_sql("SELECT SUM(a + b) FROM t WHERE c > 1")
    assert contains_aggregate(stmt.items[0].expression)
    assert referenced_columns(stmt.items[0].expression) == {"a", "b"}
    assert not contains_aggregate(stmt.where)


def _flatten_conjunction(expr):
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        yield from _flatten_conjunction(expr.left)
        yield from _flatten_conjunction(expr.right)
    else:
        yield expr
