"""Tests for the benchmark suite: templates, workloads, harness, experiments."""

import numpy as np
import pytest

from repro.bench import BenchmarkHarness, WorkloadGenerator, all_templates, get_template
from repro.bench.experiments import table1
from repro.bench.reporting import format_mapping, format_table
from repro.bench.templates.base import DashboardTemplate
from repro.core.enumerator import PlanEnumerator
from repro.core.system import VegaPlusSystem
from repro.datasets.generators import get_schema
from repro.errors import BenchmarkError
from repro.vega.spec import parse_spec_dict


# --------------------------------------------------------------------------- #
# Templates
# --------------------------------------------------------------------------- #


def test_all_seven_templates_present():
    templates = all_templates()
    assert len(templates) == 7
    names = {t.name for t in templates}
    assert names == {
        "trellis_stacked_bar",
        "line_chart",
        "interactive_histogram",
        "zoomable_heatmap",
        "crossfilter",
        "heatmap_bar",
        "overview_detail",
    }
    with pytest.raises(BenchmarkError):
        get_template("missing")


@pytest.mark.parametrize("template_name", [t.name for t in all_templates()])
@pytest.mark.parametrize("dataset", ["flights", "movies"])
def test_every_template_binds_and_validates(template_name, dataset):
    """Templates are dataset-independent: any pairing must produce a valid spec."""
    template = get_template(template_name)
    schema = get_schema(dataset)
    bound = template.bind(dataset, schema, rng=np.random.default_rng(0))
    spec = parse_spec_dict(bound.spec)
    assert spec.total_transforms() >= 2
    assert spec.referenced_datasets()
    plans = PlanEnumerator(spec).enumerate()
    assert len(plans) >= 2


@pytest.mark.parametrize("template_name", [t.name for t in all_templates()])
def test_every_template_executes_end_to_end(template_name):
    """Every template renders and (if interactive) survives an interaction."""
    harness = BenchmarkHarness(seed=0)
    configuration = harness.configure(template_name, "flights", 800, interactions_per_session=2)
    system = VegaPlusSystem(configuration.spec, configuration.database)
    system.optimize()
    system.initialize()
    for interaction in configuration.sessions[0][:2]:
        system.interact(interaction)
    for dataset_name in system.spec.referenced_datasets():
        assert isinstance(system.dataset(dataset_name), list)


def test_template_interactions_sample_plausible_values():
    template = get_template("interactive_histogram")
    schema = get_schema("flights")
    bound = template.bind("flights", schema, rng=np.random.default_rng(1))
    rng = np.random.default_rng(2)
    for _ in range(20):
        interaction = template.sample_interaction(rng, schema, bound.fields)
        if "maxbins" in interaction:
            assert 5 <= interaction["maxbins"] <= 100
        else:
            assert interaction["bin_field"] in schema.quantitative_fields()


def test_template_field_binding_respects_roles():
    template = get_template("heatmap_bar")
    schema = get_schema("movies")
    bound = template.bind("movies", schema, rng=np.random.default_rng(0))
    assert bound.fields["x_value"] in schema.quantitative_fields()
    assert bound.fields["y_category"] in schema.categorical_fields()
    assert bound.fields["bar_category"] in schema.categorical_fields()


def test_template_explicit_field_binding():
    template = get_template("interactive_histogram")
    schema = get_schema("flights")
    bound = template.bind("flights", schema, fields={"value": "distance"})
    assert bound.fields["value"] == "distance"
    assert "distance" in str(bound.spec)


def test_template_missing_field_type_raises():
    class ImpossibleTemplate(DashboardTemplate):
        name = "impossible"

        def required_roles(self):
            from repro.bench.templates.base import FieldRole
            from repro.datasets.schema import FieldType

            return [FieldRole(f"role{i}", FieldType.TEMPORAL) for i in range(10)]

        def build_spec(self, dataset, fields):
            return {"data": [{"name": "source", "table": dataset}]}

    schema = get_schema("flights")
    # flights has one temporal field; roles re-use it rather than fail, so the
    # bind succeeds — but a schema with no temporal fields must raise.
    ImpossibleTemplate().bind("flights", schema)
    from repro.datasets.schema import DatasetSchema

    with pytest.raises(BenchmarkError):
        ImpossibleTemplate().bind("empty", DatasetSchema(name="empty", fields=[]))


# --------------------------------------------------------------------------- #
# Workload generation
# --------------------------------------------------------------------------- #


def test_workload_generator_sessions_shape():
    generator = WorkloadGenerator(seed=0)
    workload = generator.generate_workload(
        "crossfilter", "flights", n_sessions=3, interactions_per_session=5
    )
    assert workload.n_sessions == 3
    assert workload.interactions_per_session == 5
    assert len(workload.all_interactions()) == 15
    # Crossfilter interactions are brush updates on one of three views.
    first = workload.sessions[0][0]
    assert any(key.startswith("brush_") for key in first)


def test_workload_static_template_has_empty_sessions():
    generator = WorkloadGenerator(seed=0)
    workload = generator.generate_workload("line_chart", "weather", n_sessions=2)
    assert workload.sessions == [[], []]


def test_workload_is_deterministic_per_seed():
    first = WorkloadGenerator(seed=5).generate_workload("interactive_histogram", "taxi", 2, 4)
    second = WorkloadGenerator(seed=5).generate_workload("interactive_histogram", "taxi", 2, 4)
    assert first.sessions == second.sessions
    third = WorkloadGenerator(seed=6).generate_workload("interactive_histogram", "taxi", 2, 4)
    assert first.sessions != third.sessions


def test_workload_invalid_parameters():
    with pytest.raises(BenchmarkError):
        WorkloadGenerator().generate_workload("line_chart", "weather", n_sessions=0)


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #


def test_harness_measures_plans_and_builds_pairs():
    harness = BenchmarkHarness(seed=0)
    configuration = harness.configure(
        "interactive_histogram", "flights", 1_000, interactions_per_session=3
    )
    measurements = harness.measure_plans(configuration, max_sessions=1)
    assert len(measurements) == 4
    for measurement in measurements:
        session = measurement.sessions[0]
        assert len(session.episode_seconds) == 4  # init + 3 interactions
        assert len(session.episode_vectors) == 4
        assert session.total_seconds > 0
        assert set(session.breakdown) == {"client", "server", "network", "serialization"}
        assert "queries_executed" in session.engine_counters
        assert "plan_cache_hits" in session.engine_counters
        assert "groups_formed" in session.engine_counters

    # At least one candidate plan offloads grouping to the SQL backend.
    assert any(m.engine_totals().get("groups_formed", 0) > 0 for m in measurements)

    pairs = harness.initial_render_dataset(measurements)
    assert len(pairs) == 6  # C(4, 2)
    interaction_pairs = harness.interaction_dataset(measurements)
    assert len(interaction_pairs) == 24  # 4 episodes x C(4, 2)
    episodes = harness.episode_vector_matrix(measurements)
    assert len(episodes) == 4 and len(episodes[0]) == 4


def test_harness_plan_sampling_keeps_extremes():
    harness = BenchmarkHarness(seed=0)
    configuration = harness.configure("crossfilter", "flights", 500, interactions_per_session=1)
    sampled = harness.enumerate_plans(configuration, max_plans=8)
    assert len(sampled) == 8
    full = PlanEnumerator(configuration.spec).enumerate()
    assert sampled[0].plan_id == full[0].plan_id
    assert sampled[-1].plan_id == full[-1].plan_id
    with pytest.raises(BenchmarkError):
        harness.enumerate_plans(configuration, max_plans=1)


def test_harness_database_memoised_per_size():
    harness = BenchmarkHarness(seed=0)
    first = harness.database_for("flights", 700)
    second = harness.database_for("flights", 700)
    assert first is second
    assert first.table("flights").num_rows == 700


# --------------------------------------------------------------------------- #
# Experiments and reporting
# --------------------------------------------------------------------------- #


def test_table1_structure_and_shape():
    result = table1()
    assert len(result.rows_by_template) == 7
    by_name = {r.template: r for r in result.rows_by_template}
    # The crossfilter dashboard has by far the largest enumeration space,
    # and the single-view templates have the smallest (paper Table 1 shape).
    assert by_name["crossfilter"].n_plans == max(r.n_plans for r in result.rows_by_template)
    assert by_name["line_chart"].n_plans == min(r.n_plans for r in result.rows_by_template)
    assert by_name["interactive_histogram"].n_plans == 4
    assert all(r.n_pairs > 0 for r in result.rows_by_template)
    assert "crossfilter" in str(result)


def test_reporting_formatters():
    table = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]], title="demo")
    assert "demo" in table and "a" in table and "0.0010" in table
    mapping = format_mapping({"k": 1.0}, title="map")
    assert "k: 1" in mapping
