"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets import generate_dataset
from repro.sql import Database
from repro.storage.shared import active_segment_names


@pytest.fixture(scope="session", autouse=True)
def no_leaked_shared_memory():
    """The suite must not strand shared-memory segments.

    Every test that triggers a shared-memory table export (the process
    morsel executor) must release it — via ``Database.close()``,
    ``drop_table`` or handle ``close()`` — before the session ends;
    a leak here means ``/dev/shm`` grows with every test run.
    """
    yield
    assert active_segment_names() == set(), (
        f"shared-memory segments leaked by the test session: "
        f"{sorted(active_segment_names())}"
    )


@pytest.fixture(scope="session")
def flights_rows() -> list[dict]:
    """A small, deterministic flights dataset shared across tests."""
    return generate_dataset("flights", 500, seed=7)


@pytest.fixture()
def flights_db(flights_rows) -> Database:
    """A database with the small flights table registered."""
    db = Database()
    db.register_rows("flights", flights_rows)
    return db


@pytest.fixture()
def tiny_table_rows() -> list[dict]:
    """A handful of hand-written rows with known aggregates."""
    return [
        {"category": "a", "value": 10.0, "weight": 1.0},
        {"category": "a", "value": 20.0, "weight": 2.0},
        {"category": "b", "value": 30.0, "weight": 3.0},
        {"category": "b", "value": None, "weight": 4.0},
        {"category": "c", "value": 50.0, "weight": 5.0},
    ]


@pytest.fixture()
def tiny_db(tiny_table_rows) -> Database:
    """A database holding only the tiny hand-written table."""
    db = Database()
    db.register_rows("tiny", tiny_table_rows)
    return db


@pytest.fixture()
def histogram_spec() -> dict:
    """The running-example histogram specification (Figure 1 of the paper)."""
    return {
        "signals": [
            {"name": "maxbins", "value": 10, "bind": {"input": "range", "min": 5, "max": 50}},
            {"name": "min_delay", "value": 0},
        ],
        "data": [
            {"name": "source", "table": "flights"},
            {
                "name": "binned",
                "source": "source",
                "transform": [
                    {"type": "filter", "expr": "datum.delay >= min_delay"},
                    {"type": "extent", "field": "delay", "signal": "delay_extent"},
                    {
                        "type": "bin",
                        "field": "delay",
                        "maxbins": {"signal": "maxbins"},
                        "extent": {"signal": "delay_extent"},
                    },
                    {
                        "type": "aggregate",
                        "groupby": ["bin0", "bin1"],
                        "ops": ["count"],
                        "as": ["count"],
                    },
                ],
            },
        ],
        "scales": [{"name": "x", "domain": {"data": "binned", "field": "bin0"}}],
        "marks": [{"type": "rect", "from": {"data": "binned"}}],
    }
