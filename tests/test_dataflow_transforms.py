"""Tests for the client-side Vega transforms."""

import pytest

from repro.dataflow import Dataflow, create_transform
from repro.dataflow.operator import EvaluationContext
from repro.dataflow.transforms.bin import compute_bins, nice_bin_step
from repro.errors import DataflowError, SpecError


def run_transform(definition, rows, signals=None):
    """Evaluate a single transform over ``rows`` inside a minimal dataflow."""
    dataflow = Dataflow()
    for name, value in (signals or {}).items():
        dataflow.declare_signal(name, value=value)
    source = dataflow.add_source(rows, name="src")
    operator = create_transform(definition)
    dataflow.add_operator(operator, source, name="op")
    dataflow.mark_dataset("out", operator)
    dataflow.run()
    return operator.last_result


ROWS = [
    {"category": "a", "value": 1.0, "ts": 100.0},
    {"category": "a", "value": 3.0, "ts": 200.0},
    {"category": "b", "value": 5.0, "ts": 300.0},
    {"category": "b", "value": 7.0, "ts": 400.0},
    {"category": "c", "value": None, "ts": 500.0},
]


# --------------------------------------------------------------------------- #
# Individual transforms
# --------------------------------------------------------------------------- #


def test_filter_transform_with_signal():
    result = run_transform(
        {"type": "filter", "expr": "datum.value >= cutoff"},
        ROWS,
        signals={"cutoff": 4},
    )
    assert [r["value"] for r in result.rows] == [5.0, 7.0]


def test_filter_requires_expression():
    with pytest.raises(DataflowError):
        create_transform({"type": "filter"})


def test_extent_transform_outputs_min_max():
    result = run_transform({"type": "extent", "field": "value"}, ROWS)
    assert result.value == [1.0, 7.0]
    assert len(result.rows) == len(ROWS)  # rows pass through


def test_extent_of_empty_input_defaults_to_zero():
    result = run_transform({"type": "extent", "field": "value"}, [])
    assert result.value == [0.0, 0.0]


def test_bin_transform_annotates_rows():
    result = run_transform(
        {"type": "bin", "field": "value", "maxbins": 4, "extent": [0, 8]}, ROWS
    )
    binned = result.rows[0]
    assert "bin0" in binned and "bin1" in binned
    assert binned["bin1"] - binned["bin0"] == pytest.approx(result.value["step"])
    # NULL values get NULL bins.
    assert result.rows[-1]["bin0"] is None


def test_bin_values_fall_inside_their_bins():
    result = run_transform(
        {"type": "bin", "field": "value", "maxbins": 10, "extent": [0, 10]}, ROWS
    )
    for row in result.rows:
        if row["value"] is None:
            continue
        assert row["bin0"] <= row["value"] <= row["bin1"]


def test_nice_bin_step_ladder():
    assert nice_bin_step(100, 10) == 10
    assert nice_bin_step(100, 4) == 25
    assert nice_bin_step(1, 20) == 0.05
    start, stop, step = compute_bins((0, 100), 10)
    assert start == 0 and stop == 100 and step == 10


def test_aggregate_transform_counts_and_means():
    result = run_transform(
        {
            "type": "aggregate",
            "groupby": ["category"],
            "ops": ["count", "mean"],
            "fields": [None, "value"],
            "as": ["n", "avg"],
        },
        ROWS,
    )
    by_category = {r["category"]: r for r in result.rows}
    assert by_category["a"]["n"] == 2 and by_category["a"]["avg"] == 2.0
    assert by_category["c"]["avg"] is None  # only NULL values in group c


def test_aggregate_global_group():
    result = run_transform({"type": "aggregate", "ops": ["count"]}, ROWS)
    assert result.rows == [{"count": 5.0}]


def test_aggregate_rejects_unknown_op():
    with pytest.raises(DataflowError):
        create_transform({"type": "aggregate", "ops": ["frobnicate"]})


def test_joinaggregate_keeps_all_rows():
    result = run_transform(
        {
            "type": "joinaggregate",
            "groupby": ["category"],
            "ops": ["sum"],
            "fields": ["value"],
            "as": ["group_total"],
        },
        ROWS,
    )
    assert len(result.rows) == 5
    assert result.rows[0]["group_total"] == 4.0


def test_collect_sort_ascending_nulls_last():
    result = run_transform(
        {"type": "collect", "sort": {"field": "value", "order": "ascending"}}, ROWS
    )
    values = [r["value"] for r in result.rows]
    assert values[:4] == [1.0, 3.0, 5.0, 7.0]
    assert values[4] is None


def test_collect_sort_descending_matches_sql_null_ordering():
    # Mirrors the SQL engine (PostgreSQL semantics): DESC places NULLs first,
    # so client- and server-side sorts of the same data agree.
    result = run_transform(
        {"type": "collect", "sort": {"field": "value", "order": "descending"}}, ROWS
    )
    values = [r["value"] for r in result.rows]
    assert values[0] is None
    assert values[1:] == [7.0, 5.0, 3.0, 1.0]


def test_project_selects_and_renames():
    result = run_transform(
        {"type": "project", "fields": ["category", "value"], "as": ["cat", "v"]}, ROWS
    )
    assert set(result.rows[0]) == {"cat", "v"}


def test_formula_adds_derived_field():
    result = run_transform(
        {"type": "formula", "expr": "datum.value * 10", "as": "scaled"}, ROWS
    )
    assert result.rows[0]["scaled"] == 10.0
    assert result.rows[-1]["scaled"] is None


def test_stack_running_offsets_per_group():
    result = run_transform(
        {"type": "stack", "field": "value", "groupby": ["category"], "sort": {"field": "value"}},
        ROWS,
    )
    group_a = [r for r in result.rows if r["category"] == "a"]
    assert [(r["y0"], r["y1"]) for r in group_a] == [(0.0, 1.0), (1.0, 4.0)]


def test_timeunit_truncates_to_unit():
    result = run_transform(
        {"type": "timeunit", "field": "ts", "units": "minutes"}, ROWS
    )
    assert result.rows[0]["unit0"] == 60.0
    assert result.rows[0]["unit1"] == 120.0


def test_timeunit_rejects_unknown_unit():
    dataflow = Dataflow()
    source = dataflow.add_source(ROWS)
    operator = create_transform({"type": "timeunit", "field": "ts", "units": "lightyears"})
    dataflow.add_operator(operator, source)
    with pytest.raises(DataflowError):
        dataflow.run()


def test_window_row_number_and_running_sum():
    result = run_transform(
        {
            "type": "window",
            "groupby": ["category"],
            "sort": {"field": "value"},
            "ops": ["row_number", "sum"],
            "fields": [None, "value"],
            "as": ["rank", "running"],
        },
        ROWS,
    )
    group_b = [r for r in result.rows if r["category"] == "b"]
    assert [r["rank"] for r in group_b] == [1.0, 2.0]
    assert [r["running"] for r in group_b] == [5.0, 12.0]


def test_create_transform_unknown_type():
    with pytest.raises(SpecError):
        create_transform({"type": "teleport"})
    with pytest.raises(SpecError):
        create_transform({"no_type": True})
