"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    DatasetGenerator,
    FieldType,
    available_datasets,
    flights_schema,
    generate_dataset,
)
from repro.datasets.generators import get_schema
from repro.datasets.schema import DatasetSchema, FieldSpec


def test_available_datasets_lists_all_five():
    assert available_datasets() == ["flights", "movies", "stocks", "taxi", "weather"]


def test_generate_dataset_row_count_and_columns():
    rows = generate_dataset("flights", 100, seed=1)
    assert len(rows) == 100
    assert set(rows[0]) == set(flights_schema().field_names())


def test_generate_dataset_is_deterministic():
    first = generate_dataset("movies", 50, seed=3)
    second = generate_dataset("movies", 50, seed=3)
    assert first == second


def test_generate_dataset_different_seed_differs():
    first = generate_dataset("movies", 50, seed=3)
    second = generate_dataset("movies", 50, seed=4)
    assert first != second


def test_generate_dataset_unknown_name_raises():
    with pytest.raises(KeyError):
        generate_dataset("does-not-exist", 10)


def test_quantitative_values_respect_bounds():
    schema = flights_schema()
    rows = generate_dataset("flights", 300, seed=0)
    spec = schema.field("distance")
    values = [r["distance"] for r in rows if r["distance"] is not None]
    assert min(values) >= spec.minimum
    assert max(values) <= spec.maximum


def test_null_rate_produces_some_nulls():
    rows = generate_dataset("flights", 2000, seed=0)
    nulls = sum(1 for r in rows if r["delay"] is None)
    assert 0 < nulls < 200


def test_categorical_values_come_from_schema():
    schema = get_schema("taxi")
    rows = generate_dataset("taxi", 200, seed=5)
    allowed = set(schema.field("pickup_borough").categories)
    assert {r["pickup_borough"] for r in rows} <= allowed


def test_categorical_skew_most_common_first():
    """Zipf-like skew: the first category should be the most frequent."""
    schema = get_schema("weather")
    rows = generate_dataset("weather", 3000, seed=2)
    counts = {}
    for row in rows:
        counts[row["condition"]] = counts.get(row["condition"], 0) + 1
    first_category = schema.field("condition").categories[0]
    assert counts[first_category] == max(counts.values())


def test_iter_rows_total_count():
    generator = DatasetGenerator(get_schema("stocks"), seed=1)
    rows = list(generator.iter_rows(2500, chunk_size=1000))
    assert len(rows) == 2500


def test_columns_returns_numpy_arrays():
    generator = DatasetGenerator(flights_schema(), seed=1)
    columns = generator.columns(10)
    assert isinstance(columns["delay"], np.ndarray)
    assert len(columns["carrier"]) == 10


def test_negative_rows_rejected():
    generator = DatasetGenerator(flights_schema(), seed=1)
    with pytest.raises(ValueError):
        generator.columns(-1)


def test_schema_field_lookup_and_types():
    schema = flights_schema()
    assert schema.field("carrier").ftype is FieldType.CATEGORICAL
    assert "delay" in schema.quantitative_fields()
    assert "date" in schema.temporal_fields()
    with pytest.raises(KeyError):
        schema.field("nope")


def test_field_spec_validation():
    with pytest.raises(ValueError):
        FieldSpec("bad", FieldType.CATEGORICAL)
    with pytest.raises(ValueError):
        FieldSpec("bad", FieldType.QUANTITATIVE, minimum=10, maximum=0)
    with pytest.raises(ValueError):
        FieldSpec("bad", FieldType.QUANTITATIVE, null_rate=1.5)


def test_dataset_schema_field_names_order():
    schema = DatasetSchema(
        name="demo",
        fields=[
            FieldSpec("x", FieldType.QUANTITATIVE, 0, 1),
            FieldSpec("y", FieldType.QUANTITATIVE, 0, 1),
        ],
    )
    assert schema.field_names() == ["x", "y"]
