"""Tests for serialization codecs, the network model, caches and middleware."""

import pytest

from repro.net import (
    ArrowCodec,
    JsonCodec,
    MiddlewareServer,
    NetworkModel,
    QueryCache,
    VirtualClock,
)


ROWS = [{"a": float(i), "b": f"value-{i}"} for i in range(200)]


# --------------------------------------------------------------------------- #
# Codecs
# --------------------------------------------------------------------------- #


def test_json_payload_larger_than_arrow():
    json_estimate = JsonCodec().estimate(ROWS)
    arrow_estimate = ArrowCodec().estimate(ROWS)
    assert json_estimate.payload_bytes > arrow_estimate.payload_bytes
    assert json_estimate.decode_seconds > arrow_estimate.decode_seconds


def test_codec_payload_scales_with_rows():
    codec = ArrowCodec()
    small = codec.estimate(ROWS[:10]).payload_bytes
    large = codec.estimate(ROWS).payload_bytes
    # Per-row payload grows 20x (framing overhead is constant).
    assert large - codec.framing_bytes > (small - codec.framing_bytes) * 15


def test_codec_empty_result():
    assert JsonCodec().estimate([]).payload_bytes >= 2
    assert ArrowCodec().estimate([]).num_rows == 0


# --------------------------------------------------------------------------- #
# Network model and clock
# --------------------------------------------------------------------------- #


def test_network_transfer_cost_components():
    network = NetworkModel(rtt_seconds=0.01, bandwidth_bytes_per_second=1_000_000)
    cost = network.transfer(500_000)
    assert cost.seconds == pytest.approx(0.01 + 0.5)
    assert network.transfer(0, round_trips=3).seconds == pytest.approx(0.03)


def test_network_profiles_ordering():
    payload = 1_000_000
    localhost = NetworkModel.localhost().transfer(payload).seconds
    lan = NetworkModel.lan().transfer(payload).seconds
    wan = NetworkModel.wan().transfer(payload).seconds
    assert localhost < lan < wan


def test_virtual_clock_accumulates_and_resets():
    clock = VirtualClock()
    clock.add_compute(0.1)
    clock.add_network(0.2)
    clock.add_serialization(0.05)
    assert clock.total_seconds == pytest.approx(0.35)
    assert len(clock.events) == 3
    clock.reset()
    assert clock.total_seconds == 0


@pytest.mark.parametrize(
    ("preset", "rtt", "bandwidth"),
    [
        (NetworkModel.localhost, 0.0002, 5e9),
        (NetworkModel.lan, 0.004, 500e6 / 8),
        (NetworkModel.wan, 0.05, 50e6 / 8),
    ],
    ids=["localhost", "lan", "wan"],
)
def test_network_preset_transfer_math(preset, rtt, bandwidth):
    """Each preset's transfer cost is exactly rtt * round_trips + bytes/bw."""
    network = preset()
    assert network.rtt_seconds == pytest.approx(rtt)
    assert network.bandwidth_bytes_per_second == pytest.approx(bandwidth)
    payload = 2_000_000
    for round_trips in (1, 2, 5):
        cost = network.transfer(payload, round_trips=round_trips)
        assert cost.payload_bytes == payload
        assert cost.round_trips == round_trips
        assert cost.seconds == pytest.approx(round_trips * rtt + payload / bandwidth)
    # An empty payload still pays the round-trip latency.
    assert network.transfer(0).seconds == pytest.approx(rtt)


def test_virtual_clock_event_log_labels():
    clock = VirtualClock()
    clock.add_compute(0.2, label="dataflow")
    clock.add_network(0.01, label="fetch")
    clock.add_serialization(0.002, label="decode")
    assert clock.events == [("dataflow", 0.2), ("fetch", 0.01), ("decode", 0.002)]
    assert clock.compute_seconds == pytest.approx(0.2)
    assert clock.network_seconds == pytest.approx(0.01)
    assert clock.serialization_seconds == pytest.approx(0.002)
    clock.reset()
    assert clock.events == []


# --------------------------------------------------------------------------- #
# Query cache
# --------------------------------------------------------------------------- #


def test_cache_hit_miss_statistics():
    cache = QueryCache(max_entries=4)
    assert cache.get("q1") is None
    cache.put("q1", ROWS[:5], payload_bytes=100)
    assert cache.get("q1").rows == ROWS[:5]
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_cache_fifo_eviction():
    cache = QueryCache(max_entries=2)
    cache.put("q1", [], 10)
    cache.put("q2", [], 10)
    cache.put("q3", [], 10)
    assert not cache.contains("q1")
    assert cache.contains("q2") and cache.contains("q3")
    assert cache.stats.evictions == 1
    assert cache.cached_queries() == ["q2", "q3"]


def test_cache_rejects_large_results_and_duplicates():
    cache = QueryCache(max_entries=4, max_result_bytes=100)
    assert cache.put("big", [], payload_bytes=1000) is False
    assert cache.stats.rejected_too_large == 1
    assert cache.put("q", [], 10) is True
    assert cache.put("q", [], 10) is False  # duplicate check
    assert len(cache) == 1


def test_cache_invalid_capacity():
    with pytest.raises(ValueError):
        QueryCache(max_entries=0)
    with pytest.raises(ValueError):
        QueryCache(policy="random")
    with pytest.raises(ValueError):
        QueryCache(max_total_bytes=0)


def test_cache_lru_policy_keeps_recently_used_entries():
    cache = QueryCache(max_entries=2, policy="lru")
    cache.put("q1", [], 10)
    cache.put("q2", [], 10)
    assert cache.get("q1") is not None  # refresh q1's recency
    cache.put("q3", [], 10)  # evicts q2, the least recently used
    assert cache.contains("q1") and cache.contains("q3")
    assert not cache.contains("q2")
    # Under FIFO the same sequence evicts q1 (oldest insertion) instead.
    fifo = QueryCache(max_entries=2, policy="fifo")
    fifo.put("q1", [], 10)
    fifo.put("q2", [], 10)
    assert fifo.get("q1") is not None
    fifo.put("q3", [], 10)
    assert not fifo.contains("q1")
    assert fifo.contains("q2") and fifo.contains("q3")


def test_cache_byte_budget_evicts_until_total_fits():
    cache = QueryCache(max_entries=10, max_total_bytes=100)
    cache.put("a", [], 40)
    cache.put("b", [], 40)
    assert cache.total_bytes == 80
    cache.put("c", [], 40)  # 120 > 100: evicts "a"
    assert not cache.contains("a")
    assert cache.total_bytes == 80
    assert cache.stats.evictions == 1
    assert cache.stats.evicted_bytes == 40
    # A result larger than the whole budget is rejected outright.
    assert cache.put("huge", [], 150) is False
    assert cache.stats.rejected_too_large == 1
    cache.clear()
    assert cache.total_bytes == 0


def test_cache_statistics_expose_policy_and_budget():
    cache = QueryCache(max_entries=4, policy="lru", max_total_bytes=500)
    assert cache.stats.policy == "lru"
    assert cache.stats.byte_budget == 500
    cache.put("q", [], 123)
    assert cache.stats.current_bytes == 123
    assert cache.peek("q") is not None
    assert cache.stats.hits == 0 and cache.stats.misses == 0  # peek is silent


def test_cache_replace_keeps_byte_accounting_exact():
    """Regression: overwrite-then-evict must never double-subtract.

    The replace path swaps the entry's rows and bytes under the same
    lock that the eviction loop reads them through, so ``current_bytes``
    stays the exact sum of cached payloads across overwrite sizes in
    either direction.
    """
    cache = QueryCache(max_entries=4, max_total_bytes=200)
    cache.put("a", [], 40)
    cache.put("b", [], 40)
    # Overwrite smaller -> budget shrinks by the difference.
    assert cache.put("a", [{"v": 1}], 10, replace=True) is True
    assert cache.stats.current_bytes == 50
    assert cache.stats.replacements == 1
    assert cache.stats.insertions == 2  # a replace is not an insertion
    assert cache.peek("a").rows == [{"v": 1}]
    # Overwrite larger -> budget grows by the difference.
    cache.put("a", [], 90, replace=True)
    assert cache.stats.current_bytes == 130
    # Grow "b" past the budget: the eviction that follows subtracts each
    # victim's *current* bytes — the total lands back at the exact sum.
    cache.put("b", [], 150, replace=True)
    assert cache.contains("b") and not cache.contains("a")
    assert cache.stats.current_bytes == 150 == cache.total_bytes
    assert cache.stats.evicted_bytes == 90
    # replace=True on a missing key is a plain insertion.
    cache.clear()
    assert cache.put("fresh", [], 10, replace=True) is True
    assert cache.stats.current_bytes == 10


def test_cache_replace_is_exact_under_contention():
    """current_bytes stays exact while replaces race the eviction loop."""
    import threading

    cache = QueryCache(max_entries=6, max_total_bytes=300)

    def hammer(worker: int) -> None:
        for i in range(400):
            cache.put(f"q{(worker + i) % 9}", [], 30 + (i % 3) * 20, replace=True)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # The pinned invariant: the counter equals the recomputed sum (a
    # double-subtract would leave it short) and respects the budget.
    with cache._lock:
        actual = sum(entry.payload_bytes for entry in cache._entries.values())
    assert cache.stats.current_bytes == actual
    assert 0 <= cache.stats.current_bytes <= 300


def test_cache_export_restore_roundtrip():
    cache = QueryCache(max_entries=4, max_total_bytes=200)
    cache.put("a", [{"v": 1}], 40)
    cache.put("b", [{"v": 2}], 50)
    exported = cache.export_entries()
    assert exported == [("a", [{"v": 1}], 40), ("b", [{"v": 2}], 50)]
    target = QueryCache(max_entries=4, max_total_bytes=200)
    target.put("a", [{"v": 0}], 99)  # stale entry loses to the restore
    assert target.restore_entries(exported) == 2
    assert target.peek("a").rows == [{"v": 1}]
    assert target.total_bytes == 90
    assert target.cached_queries() == ["a", "b"]  # eviction order preserved
    # Oversized entries drop exactly as a fresh put would.
    tiny = QueryCache(max_entries=4, max_result_bytes=45)
    assert tiny.restore_entries(exported) == 1
    assert tiny.cached_queries() == ["a"]


def test_cache_is_thread_safe_under_contention():
    import threading

    cache = QueryCache(max_entries=8, policy="lru", max_total_bytes=400)
    errors = []

    def hammer(worker: int) -> None:
        try:
            for i in range(300):
                key = f"q{(worker + i) % 12}"
                cache.put(key, [], 50)
                cache.get(key)
        except BaseException as exc:  # corrupt OrderedDict raises here
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 8
    assert cache.total_bytes <= 400
    stats = cache.stats
    assert stats.insertions - stats.evictions == len(cache)


# --------------------------------------------------------------------------- #
# Middleware
# --------------------------------------------------------------------------- #


@pytest.fixture()
def middleware(flights_db):
    return MiddlewareServer(flights_db)


def test_middleware_executes_and_reports_costs(middleware):
    response = middleware.execute("SELECT carrier, COUNT(*) AS n FROM flights GROUP BY carrier")
    assert response.rows
    assert response.payload_bytes > 0
    assert response.server_seconds > 0
    assert response.network_seconds > 0
    assert not response.from_cache
    assert response.total_seconds > 0


def test_middleware_cache_levels(middleware):
    sql = "SELECT COUNT(*) AS n FROM flights"
    first = middleware.execute(sql)
    second = middleware.execute(sql)
    assert not first.from_cache
    assert second.cache_level == "client"
    assert second.server_seconds == 0
    assert second.network_seconds == 0
    stats = middleware.cache_statistics()
    assert stats["queries_executed"] == 1
    assert stats["client_hit_rate"] > 0


def test_middleware_server_cache_after_client_reset(middleware):
    sql = "SELECT COUNT(*) AS n FROM flights"
    middleware.execute(sql)
    middleware.client_cache.clear()
    response = middleware.execute(sql)
    assert response.cache_level == "server"
    assert response.network_seconds > 0  # still one round trip


def test_middleware_cache_disabled(flights_db):
    middleware = MiddlewareServer(flights_db, enable_cache=False)
    sql = "SELECT COUNT(*) AS n FROM flights"
    middleware.execute(sql)
    response = middleware.execute(sql)
    assert not response.from_cache
    assert middleware.queries_executed == 2


def test_middleware_reset_caches(middleware):
    sql = "SELECT COUNT(*) AS n FROM flights"
    middleware.execute(sql)
    middleware.reset_caches()
    response = middleware.execute(sql)
    assert not response.from_cache
