"""Columnar result sets and their out-of-band wire transport.

The tentpole contract of the columnar result path:

* ``ResultSet.rows()`` is byte-identical to ``Table.to_rows()`` of the
  originating table (the canonical row view),
* ``ResultSet.nbytes`` is exact — cache byte budgets charge on insert
  exactly what eviction frees,
* a ResultSet survives the wire protocol round trip (protocol-5 pickle
  with numeric columns as out-of-band raw buffers) for every column
  shape: empty results, all-NULL columns, string/object columns,
* a torn or internally inconsistent buffer section raises
  :class:`WireProtocolError` — never a hang, never silent truncation.
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.cache import QueryCache
from repro.net.serialize import (
    FRAME_HEADER_BYTES,
    ArrowCodec,
    WireProtocolError,
    decode_frame_sections,
    encode_frame,
    frame_section_lengths,
    recv_frame,
)
from repro.sql import Database
from repro.storage.column import Column, ColumnType
from repro.storage.resultset import ResultSet
from repro.storage.table import Table


def _wire_roundtrip(message: object) -> object:
    frame = encode_frame(message)
    payload_length, section_length = frame_section_lengths(frame[:FRAME_HEADER_BYTES])
    payload_end = FRAME_HEADER_BYTES + payload_length
    assert len(frame) == payload_end + section_length
    return decode_frame_sections(frame[FRAME_HEADER_BYTES:payload_end], frame[payload_end:])


# --------------------------------------------------------------------------- #
# Canonical row view and byte accounting
# --------------------------------------------------------------------------- #
def test_rows_matches_table_to_rows_exactly():
    database = Database()
    database.register_rows(
        "t",
        [
            {"g": "a", "v": 1.0, "w": None},
            {"g": None, "v": 2.5, "w": -0.0},
            {"g": "b", "v": None, "w": 7.0},
        ],
        column_order=["g", "v", "w"],
    )
    result = database.execute("SELECT * FROM t")
    rset = result.result_set()
    assert rset.rows() == result.to_rows()
    # Integral floats render as int, NaN as None — the to_rows contract.
    assert rset.rows()[0] == {"g": "a", "v": 1, "w": None}
    assert rset.head_rows(2) == result.to_rows()[:2]
    assert rset.num_rows == 3 and rset.num_columns == 3


def test_from_table_is_zero_copy_and_nbytes_is_exact():
    table = Table(
        [
            Column("v", np.array([1.0, np.nan, 3.0]), ColumnType.NUMERIC),
            Column("s", np.array(["ab", None, "cdé"], dtype=object), ColumnType.STRING),
        ]
    )
    rset = ResultSet.from_table(table)
    # Zero copy: the numeric array is the table's own buffer.
    assert rset.arrays[0] is table.columns()[0].values
    # Exact bytes: 3 float64 values + utf-8 lengths with 4-byte offsets
    # ("ab"=2+4, NULL=4, "cdé"=4+4).
    assert rset.nbytes == 3 * 8 + (2 + 4) + 4 + (4 + 4)
    masks = rset.null_masks()
    assert masks["v"].tolist() == [False, True, False]
    assert masks["s"].tolist() == [False, True, False]


def test_equality_is_canonical():
    a = ResultSet(["v"], [np.array([1.0, np.nan])], [ColumnType.NUMERIC])
    b = ResultSet(["v"], [np.array([1.0, np.nan])], [ColumnType.NUMERIC])
    c = ResultSet(["v"], [np.array([1.0, 2.0])], [ColumnType.NUMERIC])
    assert a == b  # NaN == NaN under the NULL encoding
    assert a != c
    # A numeric column boxed as objects equals its float64 twin.
    boxed = ResultSet(["v"], [np.array([1.0, None], dtype=object)], [ColumnType.STRING])
    assert boxed.equals(a) and a.equals(boxed)


def test_shape_validation():
    with pytest.raises(ValueError, match="ragged"):
        ResultSet(
            ["a", "b"],
            [np.array([1.0]), np.array([1.0, 2.0])],
            [ColumnType.NUMERIC, ColumnType.NUMERIC],
        )
    with pytest.raises(ValueError, match="mismatched"):
        ResultSet(["a"], [], [])


# --------------------------------------------------------------------------- #
# Wire round trips (hypothesis over column shapes)
# --------------------------------------------------------------------------- #
_numeric_cols = st.lists(
    st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32)),
    max_size=20,
)
_string_cols = st.lists(
    st.one_of(st.none(), st.sampled_from(["", "a", "bb", "ccc", "naïve"])), max_size=20
)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), n_rows=st.integers(min_value=0, max_value=20))
def test_resultset_wire_roundtrip_property(data, n_rows):
    names, arrays, ctypes = [], [], []
    n_cols = data.draw(st.integers(min_value=0, max_value=4))
    for index in range(n_cols):
        names.append(f"c{index}")
        if data.draw(st.booleans()):
            values = data.draw(
                st.lists(
                    st.one_of(
                        st.none(),
                        st.floats(allow_nan=False, allow_infinity=False, width=32),
                    ),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            )
            arrays.append(
                np.array([np.nan if v is None else v for v in values], dtype=np.float64)
            )
            ctypes.append(ColumnType.NUMERIC)
        else:
            values = data.draw(
                st.lists(
                    st.one_of(st.none(), st.sampled_from(["", "a", "bb", "naïve"])),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            )
            arrays.append(np.array(values, dtype=object))
            ctypes.append(ColumnType.STRING)
    rset = ResultSet(names, arrays, ctypes)
    decoded = _wire_roundtrip({"ok": True, "result": rset})["result"]
    assert isinstance(decoded, ResultSet)
    assert decoded.equals(rset)
    assert decoded.rows() == rset.rows()
    assert decoded.nbytes == rset.nbytes


def test_wire_roundtrip_edge_shapes():
    cases = [
        ResultSet([], [], []),  # zero columns
        ResultSet(["v"], [np.array([], dtype=np.float64)], [ColumnType.NUMERIC]),
        ResultSet(["s"], [np.array([], dtype=object)], [ColumnType.STRING]),
        ResultSet(  # all-NULL columns of both types
            ["v", "s"],
            [np.full(5, np.nan), np.array([None] * 5, dtype=object)],
            [ColumnType.NUMERIC, ColumnType.STRING],
        ),
    ]
    for rset in cases:
        decoded = _wire_roundtrip(rset)
        assert decoded.equals(rset)
        assert decoded.rows() == rset.rows()


def test_wire_roundtrip_preserves_noncontiguous_input():
    # A strided slice (e.g. a column of a 2-D array) must still export as
    # one contiguous out-of-band buffer.
    grid = np.arange(20, dtype=np.float64).reshape(10, 2)
    rset = ResultSet(["v"], [grid[:, 1]], [ColumnType.NUMERIC])
    assert rset.arrays[0].flags["C_CONTIGUOUS"]
    decoded = _wire_roundtrip(rset)
    assert decoded.arrays[0].tolist() == grid[:, 1].tolist()


def test_row_cache_does_not_cross_the_wire():
    rset = ResultSet(["v"], [np.array([1.0, 2.0])], [ColumnType.NUMERIC])
    rset.rows()  # populate the lazy row cache
    frame_with_cache = encode_frame(rset)
    fresh = ResultSet(["v"], [np.array([1.0, 2.0])], [ColumnType.NUMERIC])
    assert len(frame_with_cache) == len(encode_frame(fresh))


# --------------------------------------------------------------------------- #
# Torn and corrupt buffer sections
# --------------------------------------------------------------------------- #
def test_torn_buffer_section_raises_not_hangs():
    rset = ResultSet(["v"], [np.arange(64, dtype=np.float64)], [ColumnType.NUMERIC])
    frame = encode_frame(rset)
    payload_length, section_length = frame_section_lengths(frame[:FRAME_HEADER_BYTES])
    assert section_length > 0
    left, right = socket.socketpair()
    try:
        # Send everything but the tail of the buffer section, then die.
        left.sendall(frame[: len(frame) - 16])

        def close_soon() -> None:
            left.close()

        closer = threading.Timer(0.05, close_soon)
        closer.start()
        try:
            with pytest.raises(WireProtocolError, match="mid-frame"):
                recv_frame(right)
        finally:
            closer.cancel()
    finally:
        try:
            left.close()
        except OSError:
            pass
        right.close()


def test_inconsistent_buffer_section_is_protocol_error():
    rset = ResultSet(["v"], [np.arange(8, dtype=np.float64)], [ColumnType.NUMERIC])
    frame = bytearray(encode_frame(rset))
    payload_length, section_length = frame_section_lengths(
        bytes(frame[:FRAME_HEADER_BYTES])
    )
    section_start = FRAME_HEADER_BYTES + payload_length
    # Corrupt the declared buffer count: lengths no longer fit the section.
    frame[section_start : section_start + 4] = (1000).to_bytes(4, "big")
    with pytest.raises(WireProtocolError, match="declares"):
        decode_frame_sections(
            bytes(frame[FRAME_HEADER_BYTES:section_start]), bytes(frame[section_start:])
        )
    # Truncated mid-lengths section.
    with pytest.raises(WireProtocolError):
        decode_frame_sections(
            bytes(frame[FRAME_HEADER_BYTES:section_start]), b"\x00\x00"
        )
    # Trailing garbage after the last declared buffer.
    original = encode_frame(rset)
    with pytest.raises(WireProtocolError, match="trailing"):
        decode_frame_sections(
            original[FRAME_HEADER_BYTES:section_start],
            original[section_start:] + b"xx",
        )


def test_missing_buffers_for_out_of_band_payload_is_protocol_error():
    # The payload references out-of-band buffers that never arrive.
    rset = ResultSet(["v"], [np.arange(8, dtype=np.float64)], [ColumnType.NUMERIC])
    frame = encode_frame(rset)
    payload_length, _ = frame_section_lengths(frame[:FRAME_HEADER_BYTES])
    with pytest.raises(WireProtocolError):
        decode_frame_sections(
            frame[FRAME_HEADER_BYTES : FRAME_HEADER_BYTES + payload_length], b""
        )


# --------------------------------------------------------------------------- #
# Cache byte accounting with columnar entries
# --------------------------------------------------------------------------- #
def _batch(value: float, n_rows: int) -> ResultSet:
    return ResultSet(
        ["v"], [np.full(n_rows, value, dtype=np.float64)], [ColumnType.NUMERIC]
    )


def test_cache_bytes_equal_sum_of_resident_entries_after_mixed_sequence():
    """current_bytes == sum of resident entries through put/replace/evict."""
    cache = QueryCache(
        max_entries=4, max_result_bytes=10_000, max_total_bytes=400, policy="lru"
    )

    def check() -> None:
        with cache._lock:
            resident = sum(e.payload_bytes for e in cache._entries.values())
            assert cache.stats.current_bytes == resident

    for index in range(6):  # inserts + count evictions
        batch = _batch(float(index), 10 + index)
        assert cache.put(f"q{index}", batch, batch.nbytes)
        check()
    grown = _batch(9.0, 40)
    assert cache.put("q5", grown, grown.nbytes, replace=True)  # replace larger
    check()
    shrunk = _batch(9.0, 2)
    assert cache.put("q5", shrunk, shrunk.nbytes, replace=True)  # replace smaller
    check()
    huge = _batch(1.0, 49)  # 392 bytes: byte-budget eviction of everything else
    assert cache.put("big", huge, huge.nbytes)
    check()
    assert not cache.put("too-big", _batch(1.0, 2_000), 16_000)  # rejected
    check()
    cache.clear()
    check()
    assert cache.total_bytes == 0


def test_cache_entry_rows_materialise_lazily_and_payload_is_exact():
    cache = QueryCache(max_entries=2)
    batch = _batch(1.5, 4)
    cache.put("q", batch, batch.nbytes)
    entry = cache.get("q")
    assert entry.payload_bytes == batch.nbytes == 32
    assert entry.rows == [{"v": 1.5}] * 4
    # Codec estimates from the columnar batch agree with the row path.
    codec = ArrowCodec()
    assert codec.estimate_result(batch).payload_bytes == codec.estimate(
        batch.rows()
    ).payload_bytes
