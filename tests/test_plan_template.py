"""Plan-template cache: parse once per query shape, substitute literals.

The headline contract is the parse-count pin: a crossfilter brush
sequence (same SQL text, different literal bounds each step) parses
exactly once, and every subsequent step is answered by cloning the
cached statement with the new literals.  Everything else here guards
the safety rails — shapes whose token literals don't correspond 1:1 to
AST literal slots (quoted aliases, truncating LIMIT floats) must be
negatively cached and keep parsing, never produce wrong results.
"""

from __future__ import annotations

import pytest

from repro.sql import Database
from repro.sql.parser import parse_sql
from repro.sql.template import (
    build_template,
    collect_literal_values,
    instantiate,
    template_shape,
)


@pytest.fixture()
def db() -> Database:
    database = Database(ivm=False, parallelism=1)
    database.register_rows(
        "t",
        [{"g": "ab"[i % 2], "v": float(i), "w": float(i % 10)} for i in range(100)],
        column_order=["g", "v", "w"],
    )
    yield database
    database.close()


def test_brush_sequence_parses_once(db):
    """20 brush steps over the same shape: one parse, 19 template hits."""
    for low in range(0, 60, 3):  # 20 distinct literal pairs
        rows = db.query_rows(
            f"SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t "
            f"WHERE v >= {low} AND v < {low + 40} GROUP BY g ORDER BY g"
        )
        assert rows  # the window always overlaps data
    snapshot = db.metrics.snapshot()
    assert snapshot["queries_parsed"] == 1.0
    assert snapshot["plan_template_hits"] == 19.0
    assert snapshot["plan_template_misses"] == 1.0
    # Every step was still a plan-cache miss (distinct literals, distinct
    # keys) — the template cache sits behind the exact-text LRU.
    assert snapshot["plan_cache_misses"] == 20.0


def test_exact_repeat_hits_plan_cache_not_template(db):
    sql = "SELECT COUNT(*) AS n FROM t WHERE v > 10"
    db.query_rows(sql)
    db.query_rows(sql)
    snapshot = db.metrics.snapshot()
    assert snapshot["queries_parsed"] == 1.0
    assert snapshot["plan_cache_hits"] == 1.0
    assert snapshot["plan_template_hits"] == 0.0


def test_template_results_match_fresh_parse(db):
    """Template-instantiated plans return byte-identical rows to parsing."""
    uncached = Database(ivm=False, parallelism=1, plan_cache_size=0)
    uncached.register_rows(
        "t",
        [{"g": "ab"[i % 2], "v": float(i), "w": float(i % 10)} for i in range(100)],
        column_order=["g", "v", "w"],
    )
    try:
        shapes = [
            "SELECT g, v FROM t WHERE v BETWEEN {lo} AND {hi} ORDER BY v LIMIT 5",
            "SELECT g, AVG(v) AS a FROM t WHERE w = {lo} GROUP BY g HAVING AVG(v) > {hi}",
            "SELECT DISTINCT g FROM t WHERE v > {lo} OR w < {hi}",
            "SELECT CASE WHEN v > {hi} THEN 'high' ELSE 'low' END AS bucket, "
            "COUNT(*) AS n FROM t WHERE v >= {lo} GROUP BY bucket",
            "SELECT g FROM t WHERE v IN ({lo}, {hi}, 42) ORDER BY g LIMIT 3 OFFSET 1",
            "SELECT -v AS neg FROM t WHERE v > -{lo} AND v < {hi} ORDER BY neg LIMIT 4",
        ]
        for shape in shapes:
            for lo, hi in ((1, 50), (7, 80), (3, 66)):
                sql = shape.format(lo=lo, hi=hi)
                assert db.query_rows(sql) == uncached.query_rows(sql), sql
    finally:
        uncached.close()
    assert db.metrics.snapshot()["plan_template_hits"] > 0


def test_quoted_alias_shape_is_negative_cached(db):
    """A double-quoted alias is a STRING token but not a literal slot."""
    first = db.query_rows('SELECT v + 1 AS "bumped" FROM t WHERE v < 3 ORDER BY v')
    second = db.query_rows('SELECT v + 2 AS "bumped" FROM t WHERE v < 3 ORDER BY v')
    assert [row["bumped"] for row in first] == [1.0, 2.0, 3.0]
    assert [row["bumped"] for row in second] == [2.0, 3.0, 4.0]
    snapshot = db.metrics.snapshot()
    assert snapshot["plan_template_hits"] == 0.0
    assert snapshot["queries_parsed"] == 2.0


def test_fractional_limit_shape_is_negative_cached(db):
    """LIMIT 5.5 truncates to 5 in the parser — not substitutable."""
    assert len(db.query_rows("SELECT v FROM t ORDER BY v LIMIT 5.5")) == 5
    assert len(db.query_rows("SELECT v FROM t ORDER BY v LIMIT 6.5")) == 6
    snapshot = db.metrics.snapshot()
    assert snapshot["plan_template_hits"] == 0.0
    assert snapshot["queries_parsed"] == 2.0


def test_keyword_literals_stay_in_shape(db):
    """TRUE/FALSE/NULL are keywords, not slots: they key distinct shapes."""
    db.register_rows(
        "flags", [{"f": True, "v": 1.0}, {"f": False, "v": 2.0}], replace=True
    )
    on = db.query_rows("SELECT v FROM flags WHERE f = TRUE")
    off = db.query_rows("SELECT v FROM flags WHERE f = FALSE")
    assert on == [{"v": 1.0}] and off == [{"v": 2.0}]


def test_clear_plan_cache_drops_templates(db):
    db.query_rows("SELECT COUNT(*) AS n FROM t WHERE v > 5")
    db.clear_plan_cache()
    db.query_rows("SELECT COUNT(*) AS n FROM t WHERE v > 6")
    assert db.metrics.snapshot()["queries_parsed"] == 2.0


# --------------------------------------------------------------------------- #
# Unit level: shape extraction, build-time verification, substitution
# --------------------------------------------------------------------------- #


def test_template_shape_strips_literals():
    shape, values = template_shape("SELECT a FROM t WHERE b > 5 AND c = 'x'")
    assert "?" in shape and "5" not in shape and "'x'" not in shape
    assert values == [5, "x"]
    same_shape, other_values = template_shape("SELECT a FROM t WHERE b > 9 AND c = 'y'")
    assert same_shape == shape
    assert other_values == [9, "y"]


def test_build_and_instantiate_round_trip():
    sql = "SELECT a, SUM(b) AS s FROM t WHERE b >= 10 AND b < 20 GROUP BY a LIMIT 3"
    _shape, values = template_shape(sql)
    template = build_template(parse_sql(sql), values)
    assert template is not None
    replaced = instantiate(template, [100, 200, 7])
    assert replaced is not None
    assert collect_literal_values(replaced) == [100, 200, 7]
    # The original statement is untouched (templates are reused shared state).
    assert collect_literal_values(template.statement) == values


def test_build_rejects_misaligned_shapes():
    sql = 'SELECT a AS "label" FROM t WHERE b > 5'
    _shape, values = template_shape(sql)
    assert values == ["label", 5]
    assert build_template(parse_sql(sql), values) is None


def test_instantiate_rejects_wrong_value_count():
    sql = "SELECT a FROM t WHERE b > 5"
    _shape, values = template_shape(sql)
    template = build_template(parse_sql(sql), values)
    assert template is not None
    assert instantiate(template, [1, 2]) is None
