"""The persistent benchmark results store and its trajectory gate.

Covers the tentpole edges end to end: raw-BENCH-json round-trips (the
ingested row must carry exactly the percentiles/rates the summariser
lifts), verdicts on synthetic regression/improvement/noise trajectories,
machine-fingerprint isolation (a laptop never gates against CI), the
jitter floor, and the CLI exit codes CI's gate relies on
(``ingest && compare`` failing on an injected 2x p95 regression).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.bench.resultsdb import (
    METRIC_COLUMNS,
    ResultsDB,
    experiment_key,
    is_raw_document,
    iter_raw_experiments,
    machine_fingerprint,
    summary_entry,
)

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "tools"))

import benchdb  # noqa: E402

_CI_MACHINE = "Intel(R) Xeon(R) Processor @ 2.10GHz|x86_64|py3.11"
_LAPTOP_MACHINE = "Apple M2|arm64|py3.12"


def _raw_document(p95: float = 0.006, median: float = 0.05) -> dict:
    """A minimal raw pytest-benchmark document, shaped like CI's output."""
    return {
        "machine_info": {
            "machine": "x86_64",
            "python_version": "3.11.7",
            "cpu": {"brand_raw": "Intel(R) Xeon(R) Processor @ 2.10GHz"},
        },
        "commit_info": {"id": "deadbeef"},
        "datetime": "2026-08-08T00:00:00+00:00",
        "benchmarks": [
            {
                "name": "test_figure10_concurrent_sessions[cold_start_burst]",
                "stats": {"median": median, "min": median, "mean": median, "rounds": 1},
                "extra_info": {
                    "backend": "embedded",
                    "scenario": "cold_start_burst",
                    "n_rows": 1250,
                    "latency_percentiles": {"p50": 0.004, "p95": p95, "p99": p95},
                    "coalescing_rate": 0.875,
                },
            },
            {
                "name": "test_bench_groupby_kernel_vectorized",
                "stats": {
                    "median": 0.0077,
                    "min": 0.0069,
                    "mean": 0.0091,
                    "rounds": 134,
                },
                "extra_info": {},
            },
            {
                "name": "test_figure12_partitioned_scale[rows20000-parts16-workers4]",
                "stats": {"median": 0.73, "min": 0.73, "mean": 0.73, "rounds": 1},
                "extra_info": {
                    "backend": "embedded",
                    "n_rows": 20000,
                    "partitions": 16,
                    "workers": 4,
                    "latency_percentiles": {"p50": 0.001, "p95": 0.0024},
                    "pruning_rate": 0.875,
                    "speedup_vs_serial": 0.796,
                },
            },
        ],
    }


def _seed_trajectory(db: ResultsDB, p95s: list[float], machine_suffix: str = "") -> None:
    """One run per p95 value, all on the same machine fingerprint."""
    for p95 in p95s:
        document = _raw_document(p95=p95)
        if machine_suffix:
            document["machine_info"]["cpu"]["brand_raw"] += machine_suffix
        db.ingest(document, source="synthetic")


# --------------------------------------------------------------------------- #
# Shared schema helpers
# --------------------------------------------------------------------------- #


def test_experiment_key_appends_backend_when_present():
    assert experiment_key("test_x", "embedded") == "test_x[embedded]"
    assert experiment_key("test_x", None) == "test_x"


def test_summary_entry_lifts_percentiles_rates_and_structs():
    extra = {
        "latency_percentiles": {"p95": 0.00640199, "p50": 0.004944},
        "coalescing_rate": 0.87512,
        "policy": {"static": {}},
        "accuracy_over_time": [1.0, 0.53571],
    }
    entry = summary_entry(
        {"median": 0.0521504, "min": 0.05, "mean": 0.052, "rounds": 1}, extra
    )
    assert entry["median_seconds"] == 0.05215
    assert entry["latency_percentiles"] == {"p50": 0.004944, "p95": 0.006402}
    assert entry["coalescing_rate"] == 0.8751
    assert entry["policy"] == {"static": {}}
    assert entry["accuracy_over_time"] == [1.0, 0.5357]
    assert "pruning_rate" not in entry


def test_summary_entry_lifts_throughput_rps():
    entry = summary_entry(
        {"median": 3.4, "min": 3.4, "mean": 3.4, "rounds": 1},
        {"throughput_rps": 102.53817, "tier": "sharded"},
    )
    assert entry["throughput_rps"] == 102.5382
    assert entry["extra_info"]["tier"] == "sharded"


def test_throughput_rps_roundtrips_and_feeds_trend():
    document = _raw_document()
    document["benchmarks"].append(
        {
            "name": "test_figure14_serving_tier[sharded]",
            "stats": {"median": 5.58, "min": 5.58, "mean": 5.58, "rounds": 1},
            "extra_info": {
                "backend": "embedded",
                "tier": "sharded",
                "throughput_rps": 102.5,
                "latency_percentiles": {"p50": 0.01, "p95": 0.015, "p99": 0.0161},
            },
        }
    )
    with ResultsDB() as db:
        run_id = db.ingest(document, source="synthetic")
        results = {r.experiment: r for r in db.results_for_run(run_id)}
        fig14 = results["test_figure14_serving_tier[sharded][embedded]"]
        assert fig14.throughput_rps == 102.5
        assert fig14.p99_seconds == 0.0161
        key = "test_figure14_serving_tier[sharded][embedded]"
        points = db.trend(key, metric="throughput_rps")
        assert [p.value for p in points] == [102.5]
        assert "throughput_rps" in METRIC_COLUMNS
        # Rows without the metric read back None, not 0.
        fig10 = results["test_figure10_concurrent_sessions[cold_start_burst][embedded]"]
        assert fig10.throughput_rps is None


def test_schema_migration_adds_throughput_column(tmp_path):
    """Opening a pre-PR-9 DB (no throughput_rps column) upgrades it."""
    import sqlite3

    path = tmp_path / "old.db"
    with ResultsDB(path) as db:
        db.ingest(_raw_document(), source="synthetic")
    with sqlite3.connect(path) as raw:
        raw.execute("ALTER TABLE task_results DROP COLUMN throughput_rps")
    with ResultsDB(path) as db:
        columns = {
            row[1]
            for row in db._connection.execute("PRAGMA table_info(task_results)")
        }
        assert "throughput_rps" in columns
        # Old rows survive the migration and read back None.
        run_id = db.runs()[0].run_id
        for result in db.results_for_run(run_id):
            assert result.throughput_rps is None


def test_schema_migration_adds_transport_speedup_column(tmp_path):
    """Opening a pre-PR-10 DB (no transport_speedup column) upgrades it."""
    import sqlite3

    path = tmp_path / "pr9.db"
    with ResultsDB(path) as db:
        db.ingest(_raw_document(), source="synthetic")
    with sqlite3.connect(path) as raw:
        raw.execute("ALTER TABLE task_results DROP COLUMN transport_speedup")
    with ResultsDB(path) as db:
        columns = {
            row[1]
            for row in db._connection.execute("PRAGMA table_info(task_results)")
        }
        assert "transport_speedup" in columns
        run_id = db.runs()[0].run_id
        for result in db.results_for_run(run_id):
            assert result.transport_speedup is None


def test_transport_speedup_roundtrips_and_feeds_trend():
    document = _raw_document()
    document["benchmarks"].append(
        {
            "name": "test_columnar_vs_rows_transport",
            "stats": {"median": 0.2, "min": 0.19, "mean": 0.2, "rounds": 3},
            "extra_info": {"backend": "embedded", "transport_speedup": 4.27},
        }
    )
    with ResultsDB() as db:
        run_id = db.ingest(document, source="synthetic")
        results = {r.experiment: r for r in db.results_for_run(run_id)}
        cell = results["test_columnar_vs_rows_transport[embedded]"]
        assert cell.transport_speedup == 4.27
        assert "transport_speedup" in METRIC_COLUMNS
        points = db.trend(
            "test_columnar_vs_rows_transport[embedded]", metric="transport_speedup"
        )
        assert [p.value for p in points] == [4.27]


def test_is_raw_document_distinguishes_formats():
    assert is_raw_document(_raw_document())
    assert not is_raw_document({"schema": "bench-summary/v1", "experiments": {}})


def test_machine_fingerprint_is_cpu_arch_python():
    info = _raw_document()["machine_info"]
    assert machine_fingerprint(info) == _CI_MACHINE
    # No info at all still yields a usable (local) fingerprint.
    assert machine_fingerprint(None).count("|") == 2


# --------------------------------------------------------------------------- #
# Ingest round-trip
# --------------------------------------------------------------------------- #


def test_ingest_roundtrips_raw_benchmark_json():
    with ResultsDB() as db:
        run_id = db.ingest(_raw_document(), source="BENCH_smoke_embedded.json")
        run = db.run(run_id)
        assert run.machine == _CI_MACHINE
        assert run.git_sha == "deadbeef"
        assert run.backends == ("embedded",)
        assert run.n_results == 3
        assert run.run_at == "2026-08-08T00:00:00+00:00"

        results = {r.experiment: r for r in db.results_for_run(run_id)}
        fig10 = results["test_figure10_concurrent_sessions[cold_start_burst][embedded]"]
        assert fig10.p50_seconds == 0.004
        assert fig10.p95_seconds == 0.006
        assert fig10.p99_seconds == 0.006
        assert fig10.coalescing_rate == 0.875
        assert fig10.n_rows == 1250
        assert fig10.scenario == "cold_start_burst"
        assert fig10.backend == "embedded"

        kernel = results["test_bench_groupby_kernel_vectorized"]
        assert kernel.median_seconds == 0.0077
        assert kernel.p95_seconds is None
        assert kernel.backend is None

        fig12 = results[
            "test_figure12_partitioned_scale[rows20000-parts16-workers4][embedded]"
        ]
        assert fig12.pruning_rate == 0.875
        assert fig12.speedup_vs_serial == 0.796
        assert fig12.extra["partitions"] == 16


def test_ingest_matches_summariser_field_names():
    """The DB row and the compact summary lift the *same* values."""
    raw = _raw_document()
    entries = dict(iter_raw_experiments(raw))
    with ResultsDB() as db:
        run_id = db.ingest(raw)
        for result in db.results_for_run(run_id):
            entry = entries[result.experiment]
            assert result.median_seconds == entry["median_seconds"]
            if result.p95_seconds is not None:
                assert result.p95_seconds == entry["latency_percentiles"]["p95"]
            if result.coalescing_rate is not None:
                assert result.coalescing_rate == entry["coalescing_rate"]
            if result.pruning_rate is not None:
                assert result.pruning_rate == entry["pruning_rate"]


def test_ingest_summary_document():
    raw = _raw_document()
    summary = {
        "schema": "bench-summary/v1",
        "machine": ["Intel(R) Xeon(R) Processor @ 2.10GHz"],
        "python": ["3.11.7"],
        "experiments": dict(iter_raw_experiments(raw)),
    }
    with ResultsDB() as db:
        run_id = db.ingest(summary, source="BENCH_smoke_summary.json")
        run = db.run(run_id)
        assert run.n_results == 3
        results = {r.experiment: r for r in db.results_for_run(run_id)}
        key = "test_figure10_concurrent_sessions[cold_start_burst][embedded]"
        assert results[key].p95_seconds == 0.006


def test_ingest_rejects_empty_and_mixed_machines():
    with ResultsDB() as db:
        with pytest.raises(ValueError, match="no documents"):
            db.ingest([])
        with pytest.raises(ValueError, match="no experiments"):
            db.ingest({"benchmarks": []})
        other = _raw_document()
        other["machine_info"]["cpu"]["brand_raw"] = "Apple M2"
        with pytest.raises(ValueError, match="multiple machine fingerprints"):
            db.ingest([_raw_document(), other])


def test_metadata_overrides_and_config_storage():
    with ResultsDB() as db:
        run_id = db.ingest(
            _raw_document(),
            metadata={
                "git_sha": "cafe1234",
                "machine": "ci-runner|x86_64|py3.12",
                "bench_scale": 0.25,
                "morsel_workers": "4",
            },
        )
        run = db.run(run_id)
        assert run.git_sha == "cafe1234"
        assert run.machine == "ci-runner|x86_64|py3.12"
        assert run.bench_scale == 0.25
        assert run.config == {"morsel_workers": "4"}


# --------------------------------------------------------------------------- #
# The comparison engine
# --------------------------------------------------------------------------- #


def test_compare_flags_injected_2x_p95_regression():
    with ResultsDB() as db:
        _seed_trajectory(db, [0.006, 0.0061, 0.0059, 0.006])
        db.ingest(_raw_document(p95=0.012), source="regressed")  # 2x p95
        report = db.compare()
        assert not report.passed
        (delta,) = report.regressions
        assert delta.experiment == (
            "test_figure10_concurrent_sessions[cold_start_burst][embedded]"
        )
        assert delta.metric == "p95_seconds"
        assert delta.baseline == pytest.approx(0.006, abs=1e-6)
        assert delta.delta_ratio == pytest.approx(1.0, abs=0.05)


def test_compare_reports_improvement_and_ok():
    with ResultsDB() as db:
        _seed_trajectory(db, [0.012, 0.0121, 0.0119])
        db.ingest(_raw_document(p95=0.004), source="improved")
        report = db.compare()
        assert report.passed
        assert [d.experiment for d in report.improvements] == [
            "test_figure10_concurrent_sessions[cold_start_burst][embedded]"
        ]
    with ResultsDB() as db:
        # Noise within the threshold is just "ok".
        _seed_trajectory(db, [0.006, 0.0061, 0.0059])
        db.ingest(_raw_document(p95=0.0064), source="noise")
        report = db.compare()
        assert report.passed
        assert not report.regressions and not report.improvements


def test_compare_baseline_is_median_of_window_not_last_run():
    """One outlier run in the trajectory must not mask a regression."""
    with ResultsDB() as db:
        # Four honest runs, then one absurdly slow outlier.
        _seed_trajectory(db, [0.006, 0.006, 0.006, 0.006, 0.060])
        db.ingest(_raw_document(p95=0.012), source="regressed")
        report = db.compare(baseline_window=5)
        # Median of [0.06, 0.006 x4] is 0.006 -> the 2x regression shows.
        assert not report.passed


def test_compare_min_seconds_floor_absorbs_microsecond_jitter():
    with ResultsDB() as db:
        _seed_trajectory(db, [0.0010, 0.0010, 0.0010])
        db.ingest(_raw_document(p95=0.0025), source="jitter")  # +150% but +1.5ms
        report = db.compare(min_seconds=0.002)
        fig10 = [d for d in report.deltas if d.metric == "p95_seconds"]
        assert all(d.verdict == "ok" for d in fig10)
        # Dropping the floor exposes the same delta as a regression.
        report = db.compare(min_seconds=0.0)
        assert not report.passed


def test_compare_fresh_database_passes_with_all_new():
    with ResultsDB() as db:
        db.ingest(_raw_document(), source="first")
        report = db.compare()
        assert report.passed
        assert len(report.new_experiments) == len(report.deltas) == 3


def test_compare_isolates_machine_fingerprints():
    """A fast laptop trajectory must not gate the CI machine (or vice versa)."""
    with ResultsDB() as db:
        _seed_trajectory(db, [0.001, 0.001, 0.001], machine_suffix="")
        # Same experiments, much slower, on a different machine class.
        other = _raw_document(p95=0.012)
        other["machine_info"]["cpu"]["brand_raw"] = "Apple M2"
        run_id = db.ingest(other, source="laptop")
        report = db.compare(run_id=run_id)
        # No shared-machine history: everything is new, nothing regresses.
        assert report.passed
        assert len(report.new_experiments) == len(report.deltas)


def test_compare_validates_arguments():
    with ResultsDB() as db:
        with pytest.raises(ValueError, match="no runs yet"):
            db.compare()
        db.ingest(_raw_document())
        with pytest.raises(ValueError, match="threshold"):
            db.compare(threshold=0.0)
        with pytest.raises(ValueError, match="baseline_window"):
            db.compare(baseline_window=0)


def test_trajectory_and_trend_queries():
    with ResultsDB() as db:
        _seed_trajectory(db, [0.006, 0.007, 0.008])
        key = "test_figure10_concurrent_sessions[cold_start_burst][embedded]"
        history = db.trajectory(key, _CI_MACHINE, metric="p95_seconds")
        assert [value for _, value in history] == [0.008, 0.007, 0.006]  # newest first
        points = db.trend(key, metric="p95_seconds")
        assert [p.value for p in points] == [0.006, 0.007, 0.008]  # oldest first
        assert all(p.machine == _CI_MACHINE for p in points)
        with pytest.raises(ValueError, match="unknown metric"):
            db.trajectory(key, _CI_MACHINE, metric="median_seconds; DROP TABLE runs")
        assert "median_seconds" in METRIC_COLUMNS


def test_gate_metric_prefers_p95_over_median():
    with ResultsDB() as db:
        run_id = db.ingest(_raw_document())
        results = {r.experiment: r for r in db.results_for_run(run_id)}
        fig10 = results["test_figure10_concurrent_sessions[cold_start_burst][embedded]"]
        assert fig10.gate_metric() == ("p95_seconds", 0.006)
        kernel = results["test_bench_groupby_kernel_vectorized"]
        assert kernel.gate_metric() == ("median_seconds", 0.0077)


# --------------------------------------------------------------------------- #
# The CLI gate (what CI actually runs)
# --------------------------------------------------------------------------- #


def _write_raw(tmp_path: Path, name: str, p95: float) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(_raw_document(p95=p95)), encoding="utf-8")
    return path


def test_cli_ingest_then_compare_passes_on_stable_trajectory(tmp_path, capsys):
    db_path = str(tmp_path / "results.db")
    for index, p95 in enumerate([0.006, 0.0061, 0.0059]):
        raw = _write_raw(tmp_path, f"run{index}.json", p95)
        assert benchdb.main(["--db", db_path, "ingest", str(raw)]) == 0
    assert benchdb.main(["--db", db_path, "compare"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_cli_compare_exits_1_on_injected_regression(tmp_path, capsys):
    db_path = str(tmp_path / "results.db")
    for index, p95 in enumerate([0.006, 0.0061, 0.0059]):
        raw = _write_raw(tmp_path, f"run{index}.json", p95)
        benchdb.main(["--db", db_path, "ingest", str(raw)])
    regressed = _write_raw(tmp_path, "regressed.json", 0.012)
    assert benchdb.main(["--db", db_path, "ingest", str(regressed)]) == 0
    assert benchdb.main(["--db", db_path, "compare"]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "FAIL" in captured.err


def test_cli_list_and_trend(tmp_path, capsys):
    db_path = str(tmp_path / "results.db")
    raw = _write_raw(tmp_path, "run.json", 0.006)
    benchdb.main(["--db", db_path, "ingest", str(raw)])
    assert benchdb.main(["--db", db_path, "list"]) == 0
    key = "test_figure10_concurrent_sessions[cold_start_burst][embedded]"
    assert benchdb.main(["--db", db_path, "trend", key]) == 0
    # The trend table shows the stored p95 value of the single run.
    assert "0.0060" in capsys.readouterr().out


def test_cli_compare_on_empty_database_is_usage_error(tmp_path, capsys):
    db_path = str(tmp_path / "empty.db")
    assert benchdb.main(["--db", db_path, "compare"]) == 2
    assert "no runs" in capsys.readouterr().err
