"""Incremental view maintenance: the brush-sequence differential harness.

The IVM contract is *bit-identity*: every query answered from a
maintained view must return exactly the rows (``==``, no tolerance) a
full re-execution returns.  The hypothesis suites here drive random
brush trajectories — monotone ascending, descending, and jumping, with
brushes that empty out and refill — over random datasets and group keys,
comparing an IVM-enabled engine against an IVM-disabled one row for row
at every step, on every backend.

Also covered: the MIN/MAX retraction fallback (with pinned
:class:`~repro.sql.engine.EngineMetrics` counters), catalog invalidation
on re-register/drop, suffix replay (HAVING / ORDER BY / LIMIT),
eligibility negatives, and the :class:`~repro.core.policy.ArmSelector`
plan arm.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import backend_names, create_backend
from repro.core.policy import EXECUTION_ARMS, AdaptivePolicy, ArmSelector
from repro.core.system import VegaPlusSystem
from repro.errors import OptimizationError
from repro.sql import Database
from repro.sql.ivm import IVMConfig, IVMManager
from repro.sql.parser import parse_sql
from repro.sql.planner import build_logical_plan, ivm_template

settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=30
)
settings.load_profile("repro")

#: IVM engages on first sight, so short trajectories exercise maintenance.
_EAGER = IVMConfig(register_after=1)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

# Integer-valued aggregate arguments keep SUM/AVG views eligible (exact
# summation); the brush dimension shares the integer grid so brush edges
# frequently land exactly on data values — the interesting boundary case.
_row = st.fixed_dictionaries(
    {
        "g": st.sampled_from(["a", "b", "c", None]),
        "v": st.integers(min_value=-1_000, max_value=1_000),
        "b": st.integers(min_value=-20, max_value=20),
    }
)
_rows = st.lists(_row, min_size=1, max_size=50)

# Thresholds deliberately overshoot the data range on both sides, so
# trajectories include brushes that select nothing and then refill.
_thresholds = st.lists(st.integers(min_value=-25, max_value=25), min_size=2, max_size=8)

_order = st.sampled_from(["asc", "desc", "jump"])

_ALL_AGGREGATES = (
    "COUNT(*) AS n, SUM(v) AS s, AVG(v) AS mean, MIN(v) AS lo, MAX(v) AS hi"
)


def _ordered(thresholds: list[int], order: str) -> list[int]:
    if order == "asc":
        return sorted(thresholds)
    if order == "desc":
        return sorted(thresholds, reverse=True)
    return thresholds


def _assert_differential(queries: list[str], rows: list[dict], backend: str = "embedded"):
    """Every query must return identical rows with and without IVM."""
    ivm_backend = create_backend(backend, ivm_config=_EAGER)
    plain = create_backend(backend, ivm=False)
    try:
        for db in (ivm_backend, plain):
            db.register_rows("t", rows, column_order=["g", "v", "b"])
        for sql in queries:
            assert ivm_backend.execute(sql).to_rows() == plain.execute(sql).to_rows(), sql
        return ivm_backend.metrics.snapshot()
    finally:
        ivm_backend.close()
        plain.close()


# --------------------------------------------------------------------------- #
# Hypothesis: brush-trajectory differential (the tentpole harness)
# --------------------------------------------------------------------------- #


@given(rows=_rows, thresholds=_thresholds, order=_order)
def test_brush_trajectory_differential(rows, thresholds, order):
    """One-sided brush sweeps: IVM rows == re-scan rows at every step."""
    queries = [
        f"SELECT g, {_ALL_AGGREGATES} FROM t WHERE b >= {t} GROUP BY g"
        for t in _ordered(thresholds, order)
    ]
    metrics = _assert_differential(queries, rows)
    # The maintenance path must actually have served the trajectory.
    assert metrics["ivm_hits"] >= len(queries) - 1


@given(rows=_rows, thresholds=_thresholds, order=_order, width=st.integers(1, 10))
def test_brush_interval_differential(rows, thresholds, order, width):
    """Two-sided (BETWEEN) brushes, including empty and refilled windows."""
    queries = [
        f"SELECT g, {_ALL_AGGREGATES} FROM t "
        f"WHERE b BETWEEN {t} AND {t + width} GROUP BY g"
        for t in _ordered(thresholds, order)
    ]
    metrics = _assert_differential(queries, rows)
    assert metrics["ivm_hits"] >= len(queries) - 1


@given(rows=_rows, thresholds=_thresholds)
def test_global_aggregate_differential(rows, thresholds):
    """No GROUP BY: the view emits exactly one row even over empty brushes."""
    queries = [
        f"SELECT {_ALL_AGGREGATES} FROM t WHERE b >= {t}" for t in thresholds
    ]
    metrics = _assert_differential(queries, rows)
    assert metrics["ivm_hits"] >= len(queries) - 1


@settings(max_examples=15)
@pytest.mark.parametrize("backend", backend_names())
@given(rows=_rows, thresholds=_thresholds, order=_order)
def test_brush_trajectory_differential_backends(backend, rows, thresholds, order):
    """Both backends: strict-mode shapes (ORDER BY over the full group key,
    no NULL keys) maintain identically to their own re-execution."""
    rows = [dict(row, g=row["g"] or "z") for row in rows]
    queries = [
        f"SELECT g, {_ALL_AGGREGATES} FROM t WHERE b >= {t} "
        "GROUP BY g ORDER BY g"
        for t in _ordered(thresholds, order)
    ]
    metrics = _assert_differential(queries, rows, backend=backend)
    assert metrics["ivm_hits"] >= len(queries) - 1


# --------------------------------------------------------------------------- #
# Suffix replay above the maintained aggregate
# --------------------------------------------------------------------------- #


def test_having_order_limit_suffix_replayed():
    rows = [
        {"g": name, "v": value, "b": value}
        for value, name in enumerate(["a", "a", "a", "b", "b", "c", "d", "d"])
    ]
    queries = [
        f"SELECT g, COUNT(*) AS n FROM t WHERE b >= {t} "
        "GROUP BY g HAVING COUNT(*) >= 1 ORDER BY n DESC, g LIMIT 2"
        for t in (-1, 2, 5, 0, 9)
    ]
    metrics = _assert_differential(queries, rows)
    assert metrics["ivm_hits"] >= len(queries) - 1


# --------------------------------------------------------------------------- #
# MIN/MAX retraction fallback (pinned metrics)
# --------------------------------------------------------------------------- #


def _extremum_db() -> tuple[Database, Database]:
    # v is minimal at b=0 and maximal at b=9, so a brush edge crossing
    # either endpoint retracts the current extremum.
    rows = [{"b": b, "v": [1, 5, 6, 7, 8, 9, 10, 11, 12, 13][b]} for b in range(10)]
    ivm_db = Database(ivm_config=_EAGER)
    plain = Database(ivm=False)
    for db in (ivm_db, plain):
        db.register_rows("t", rows, column_order=["b", "v"])
    return ivm_db, plain


def test_min_retraction_triggers_partial_rescan():
    """Brushing out the current minimum re-scans the remaining range."""
    ivm_db, plain = _extremum_db()
    sql = "SELECT MIN(v) AS lo, MAX(v) AS hi FROM t WHERE b >= {}"
    assert ivm_db.execute(sql.format(0)).table.to_rows() == [{"lo": 1, "hi": 13}]
    # b=0 (v=1, the minimum) leaves; the max (b=9) stays in range.
    assert (
        ivm_db.execute(sql.format(1)).table.to_rows()
        == plain.execute(sql.format(1)).table.to_rows()
        == [{"lo": 5, "hi": 13}]
    )
    snapshot = ivm_db.metrics.snapshot()
    # Exactly one refreshing aggregate (MIN), re-scanning the 9 in-range rows.
    assert snapshot["ivm_fallbacks"] == 1
    assert snapshot["ivm_fallback_rows"] == 9


def test_max_retraction_triggers_partial_rescan():
    ivm_db, plain = _extremum_db()
    sql = "SELECT MIN(v) AS lo, MAX(v) AS hi FROM t WHERE b <= {}"
    assert ivm_db.execute(sql.format(9)).table.to_rows() == [{"lo": 1, "hi": 13}]
    # b=9 (v=13, the maximum) leaves; the min (b=0) stays in range.
    assert (
        ivm_db.execute(sql.format(8)).table.to_rows()
        == plain.execute(sql.format(8)).table.to_rows()
        == [{"lo": 1, "hi": 12}]
    )
    snapshot = ivm_db.metrics.snapshot()
    assert snapshot["ivm_fallbacks"] == 1
    assert snapshot["ivm_fallback_rows"] == 9


def test_emptied_brush_needs_no_fallback_rescan():
    """Dropping every row zeroes the extremum without a re-scan, and the
    refilled brush rebuilds it from entering rows alone."""
    ivm_db, plain = _extremum_db()
    sql = "SELECT MIN(v) AS lo, MAX(v) AS hi FROM t WHERE b >= {}"
    for threshold in (0, 100, 0):
        assert (
            ivm_db.execute(sql.format(threshold)).table.to_rows()
            == plain.execute(sql.format(threshold)).table.to_rows()
        )
    snapshot = ivm_db.metrics.snapshot()
    assert snapshot["ivm_fallbacks"] == 0
    assert snapshot["ivm_hits"] == 3


# --------------------------------------------------------------------------- #
# Catalog invalidation: views, statistics and results together
# --------------------------------------------------------------------------- #


def _brush_rows(values: list[int]) -> list[dict]:
    return [{"g": "x" if v % 2 else "y", "v": v, "b": v} for v in values]


def test_reregister_invalidates_views_and_statistics():
    db = Database(ivm_config=_EAGER)
    db.register_rows("t", _brush_rows([1, 2, 3, 4]), column_order=["g", "v", "b"])
    sql = "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t WHERE b >= {} GROUP BY g"
    db.execute(sql.format(0))
    db.execute(sql.format(2))
    assert db.ivm.view_count() == 1
    assert db.table_statistics("t").num_rows == 4

    db.register_rows(
        "t", _brush_rows([10, 20, 30]), replace=True, column_order=["g", "v", "b"]
    )
    # The stale view is gone, the statistics cache re-derives from the new
    # table, and the next brush answers from the new data.
    assert db.ivm.view_count() == 0
    assert db.metrics.snapshot()["ivm_invalidations"] == 1
    assert db.table_statistics("t").num_rows == 3
    fresh = Database(ivm=False)
    fresh.register_rows("t", _brush_rows([10, 20, 30]), column_order=["g", "v", "b"])
    for threshold in (0, 15, 25):
        assert (
            db.execute(sql.format(threshold)).table.to_rows()
            == fresh.execute(sql.format(threshold)).table.to_rows()
        )


def test_drop_table_invalidates_views():
    db = Database(ivm_config=_EAGER)
    db.register_rows("t", _brush_rows([1, 2, 3]), column_order=["g", "v", "b"])
    db.execute("SELECT g, COUNT(*) AS n FROM t WHERE b >= 1 GROUP BY g")
    assert db.ivm.view_count() == 1
    db.drop_table("t")
    assert db.ivm.view_count() == 0
    assert db.metrics.snapshot()["ivm_invalidations"] == 1


def test_sqlite_reregister_invalidates_views():
    backend = create_backend("sqlite", ivm_config=_EAGER)
    try:
        backend.register_rows("t", _brush_rows([1, 2, 3, 4]), column_order=["g", "v", "b"])
        sql = "SELECT g, COUNT(*) AS n FROM t WHERE b >= {} GROUP BY g ORDER BY g"
        backend.execute(sql.format(0))
        backend.execute(sql.format(2))
        assert backend.ivm.view_count() == 1
        backend.register_rows(
            "t", _brush_rows([5, 6]), replace=True, column_order=["g", "v", "b"]
        )
        assert backend.ivm.view_count() == 0
        plain = create_backend("sqlite", ivm=False)
        try:
            plain.register_rows("t", _brush_rows([5, 6]), column_order=["g", "v", "b"])
            assert (
                backend.execute(sql.format(0)).to_rows()
                == plain.execute(sql.format(0)).to_rows()
            )
        finally:
            plain.close()
    finally:
        backend.close()


# --------------------------------------------------------------------------- #
# Eligibility negatives: ineligible shapes/data must never engage
# --------------------------------------------------------------------------- #


def _hits_after(queries: list[str], rows: list[dict]) -> float:
    db = Database(ivm_config=_EAGER)
    db.register_rows("t", rows, column_order=list(rows[0]))
    for sql in queries:
        db.execute(sql)
    return db.metrics.snapshot()["ivm_hits"]


def test_non_integer_sum_declines():
    """SUM over non-integer floats cannot guarantee bit-identity: no hits."""
    rows = [{"g": "a", "v": 0.1 * i, "b": float(i)} for i in range(20)]
    queries = [
        f"SELECT g, SUM(v) AS s FROM t WHERE b >= {t} GROUP BY g" for t in (1, 2, 3)
    ]
    assert _hits_after(queries, rows) == 0


def test_ineligible_aggregates_decline():
    rows = [{"g": "a", "v": i, "b": i} for i in range(20)]
    for item in ("MEDIAN(v) AS m", "COUNT(DISTINCT v) AS d", "STDDEV(v) AS s"):
        queries = [
            f"SELECT g, {item} FROM t WHERE b >= {t} GROUP BY g" for t in (1, 2, 3)
        ]
        assert _hits_after(queries, rows) == 0


def test_template_requires_range_predicate():
    """Queries without a brushable range conjunct produce no template."""
    plan = build_logical_plan(
        parse_sql("SELECT g, COUNT(*) AS n FROM t WHERE g = 'a' GROUP BY g")
    )
    assert ivm_template(plan) is None


def test_view_key_excludes_brush_literals():
    """Successive brush steps share one view; ORDER BY variants do not
    perturb the aggregate state key either."""

    def key(sql: str) -> str:
        return ivm_template(build_logical_plan(parse_sql(sql))).view_key

    base = "SELECT g, COUNT(*) AS n FROM t WHERE b >= {} GROUP BY g"
    assert key(base.format(1)) == key(base.format(2))
    assert key(base.format(1)) == key(base.format(1) + " ORDER BY g")


# --------------------------------------------------------------------------- #
# The IVM plan arm (ArmSelector)
# --------------------------------------------------------------------------- #


def test_arm_selector_probes_then_routes_greedily():
    selector = ArmSelector()
    shape = "flights§brush=dep_delay"
    # Every offered arm is pulled once before any greedy routing.
    assert selector.choose(shape, ("ivm", "rescan")) == "ivm"
    selector.record(shape, "ivm", 0.010)
    assert selector.choose(shape, ("ivm", "rescan")) == "rescan"
    selector.record(shape, "rescan", 0.002)
    # Greedy thereafter: the faster arm wins until the estimates flip.
    assert selector.choose(shape, ("ivm", "rescan")) == "rescan"
    for _ in range(5):
        selector.record(shape, "rescan", 0.050)
    assert selector.choose(shape, ("ivm", "rescan")) == "ivm"
    assert selector.preferred(shape) == "ivm"


def test_arm_selector_reprobes_least_pulled_arm():
    selector = ArmSelector(probe_interval=5)
    shape = "s"
    for _ in range(3):
        selector.record(shape, "ivm", 0.001)
    selector.record(shape, "rescan", 0.100)
    choices = [selector.choose(shape, ("ivm", "rescan")) for _ in range(5)]
    # Decisions 1-4 route greedily; the 5th re-probes the least-pulled arm
    # (rescan, pulled once against ivm's three) despite its slower EWMA.
    assert choices[:4] == ["ivm"] * 4
    assert choices[4] == "rescan"


def test_arm_selector_validates_alpha_and_counts():
    with pytest.raises(OptimizationError):
        ArmSelector(alpha=0.0)
    selector = ArmSelector()
    selector.choose("s", EXECUTION_ARMS)
    selector.record("s", "ivm", 0.5)
    counters = selector.counters()
    assert counters["shapes"] == 1
    assert counters["decisions"] == 1
    assert counters["pulls"] == {"ivm": 1}


def test_arm_routing_preserves_results():
    """Whatever arm the selector picks, the rows never change."""
    db = Database(ivm_config=_EAGER)
    db.ivm.arm_selector = ArmSelector(probe_interval=3)
    rows = _brush_rows(list(range(30)))
    db.register_rows("t", rows, column_order=["g", "v", "b"])
    plain = Database(ivm=False)
    plain.register_rows("t", rows, column_order=["g", "v", "b"])
    sql = "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t WHERE b >= {} GROUP BY g"
    for threshold in range(12):
        assert (
            db.execute(sql.format(threshold)).table.to_rows()
            == plain.execute(sql.format(threshold)).table.to_rows()
        )
    # Both arms were actually exercised and observed.
    pulls = db.ivm.arm_selector.counters()["pulls"]
    assert pulls.get("ivm", 0) > 0 and pulls.get("rescan", 0) > 0


def test_system_wires_arm_selector_into_ivm(histogram_spec, flights_db):
    system = VegaPlusSystem(histogram_spec, flights_db, policy=AdaptivePolicy())
    assert flights_db.ivm.arm_selector is system.policy.arms
    stats = system.stats()
    assert "ivm" in stats
    assert set(stats["ivm"]) >= {"views", "hits", "delta_fraction", "invalidations"}
    assert "arms" in stats["policy"]


# --------------------------------------------------------------------------- #
# Metrics and configuration
# --------------------------------------------------------------------------- #


def test_metrics_snapshot_and_reset_cover_ivm():
    db = Database(ivm_config=_EAGER)
    db.register_rows("t", _brush_rows([1, 2, 3]), column_order=["g", "v", "b"])
    sql = "SELECT g, COUNT(*) AS n FROM t WHERE b >= {} GROUP BY g"
    db.execute(sql.format(1))
    db.execute(sql.format(2))
    snapshot = db.metrics.snapshot()
    assert snapshot["ivm_views"] == 1
    assert snapshot["ivm_hits"] == 2
    assert snapshot["ivm_rescan_rows_avoided"] > 0
    db.metrics.reset()
    wiped = db.metrics.snapshot()
    assert all(wiped[key] == 0 for key in snapshot if key.startswith("ivm_"))


def test_ivm_disabled_database_has_no_manager():
    db = Database(ivm=False)
    db.register_rows("t", _brush_rows([1, 2]), column_order=["g", "v", "b"])
    assert db.ivm is None
    sql = "SELECT g, COUNT(*) AS n FROM t WHERE b >= 1 GROUP BY g"
    db.execute(sql)
    db.execute(sql)
    assert db.metrics.snapshot()["ivm_hits"] == 0


def test_view_cap_evicts_oldest_view():
    db = Database(ivm_config=IVMConfig(register_after=1, max_views=2))
    db.register_rows("t", _brush_rows(list(range(10))), column_order=["g", "v", "b"])
    templates = (
        "SELECT g, COUNT(*) AS n FROM t WHERE b >= {} GROUP BY g",
        "SELECT g, SUM(v) AS s FROM t WHERE b >= {} GROUP BY g",
        "SELECT g, MIN(v) AS lo FROM t WHERE b >= {} GROUP BY g",
    )
    for template in templates:
        db.execute(template.format(1))
    assert db.ivm.view_count() == 2


def test_manager_detaches_on_listener():
    """The manager registers itself as a catalog listener at construction."""
    db = Database(ivm=False)
    manager = IVMManager(db.catalog)
    db.register_rows("t", _brush_rows([1, 2]), column_order=["g", "v", "b"])
    db.register_rows("t", _brush_rows([3]), replace=True, column_order=["g", "v", "b"])
    # No views existed, so invalidation is a no-op — but must not raise.
    assert manager.view_count() == 0
