"""Sharded serving tier: wire protocol, admission, gateway, open-loop load.

Process-spawning tests keep their datasets tiny (a few hundred rows) —
they exercise protocol and lifecycle correctness, not throughput; the
saturation measurements live in ``benchmarks/bench_fig14_serving.py``.
"""

from __future__ import annotations

import asyncio
import pickle
import socket

import pytest

from repro.bench.load import (
    ThreadedTier,
    open_loop_requests,
    run_serving_point,
    saturation_throughput,
)
from repro.errors import BenchmarkError, OverloadError, ServingError, ShardError
from repro.net.serialize import (
    FRAME_HEADER_BYTES,
    MAX_BUFFER_SECTION_BYTES,
    MAX_FRAME_BYTES,
    WireProtocolError,
    encode_frame,
    frame_section_lengths,
    recv_frame,
    send_frame,
)
from repro.server.shard import (
    AdmissionController,
    AsyncGateway,
    ShardSpec,
    TableSpec,
    default_start_method,
    shard_for,
)

SQL = (
    "SELECT carrier, COUNT(*) AS n FROM flights "
    "WHERE dep_delay >= 0 GROUP BY carrier ORDER BY carrier"
)

SPEC = ShardSpec(backend="embedded", tables=(TableSpec("flights", 300),), max_workers=2)


# --------------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------------- #
def test_wire_frame_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        messages = [
            {"op": "execute", "request_id": 7, "sql": SQL},
            {"rows": [{"a": 1.5, "b": None}], "ok": True},
            "just a string",
        ]
        for message in messages:
            send_frame(left, message)
        for message in messages:
            assert recv_frame(right) == message
    finally:
        left.close()
        right.close()


def test_wire_clean_close_raises_eof_torn_frame_raises_protocol_error():
    # Clean close at a frame boundary -> EOFError.
    left, right = socket.socketpair()
    left.close()
    try:
        with pytest.raises(EOFError):
            recv_frame(right)
    finally:
        right.close()
    # Death mid-frame -> WireProtocolError, never a silent truncation.
    left, right = socket.socketpair()
    try:
        frame = encode_frame({"op": "ping"})
        left.sendall(frame[: len(frame) - 2])
        left.close()
        with pytest.raises(WireProtocolError):
            recv_frame(right)
    finally:
        right.close()


def test_wire_header_validation():
    header = encode_frame("x")[:FRAME_HEADER_BYTES]
    payload_length, section_length = frame_section_lengths(header)
    assert payload_length == len(pickle.dumps("x", protocol=5))
    assert section_length == 0  # a plain string carries no out-of-band buffers
    with pytest.raises(WireProtocolError):
        frame_section_lengths(b"\x00\x00")  # short header
    oversized_payload = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + (0).to_bytes(8, "big")
    with pytest.raises(WireProtocolError):
        frame_section_lengths(oversized_payload)
    oversized_section = (1).to_bytes(4, "big") + (
        MAX_BUFFER_SECTION_BYTES + 1
    ).to_bytes(8, "big")
    with pytest.raises(WireProtocolError):
        frame_section_lengths(oversized_section)


def test_wire_undecodable_payload_is_protocol_error():
    left, right = socket.socketpair()
    try:
        garbage = b"\x93NOTPICKLE"
        header = len(garbage).to_bytes(4, "big") + (0).to_bytes(8, "big")
        left.sendall(header + garbage)
        with pytest.raises(WireProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# --------------------------------------------------------------------------- #
# Routing and admission
# --------------------------------------------------------------------------- #
def test_shard_for_is_stable_and_in_range():
    assignments = {f"user-{i}": shard_for(f"user-{i}", 4) for i in range(64)}
    assert all(0 <= shard < 4 for shard in assignments.values())
    # Deterministic across calls (and across processes: CRC-32, not hash()).
    assert assignments == {sid: shard_for(sid, 4) for sid in assignments}
    # Not degenerate: 64 sessions over 4 shards use more than one shard.
    assert len(set(assignments.values())) > 1
    with pytest.raises(ValueError):
        shard_for("x", 0)


def test_admission_controller_sheds_past_both_bounds():
    async def scenario():
        admission = AdmissionController(max_inflight=1, max_queue_depth=1)
        await admission.acquire()  # runs
        queued = asyncio.ensure_future(admission.acquire())  # queues
        await asyncio.sleep(0)
        with pytest.raises(OverloadError):
            await admission.acquire()  # both bounds hit -> shed
        admission.release(ok=True)
        await queued
        admission.release(ok=False)
        return admission.snapshot()

    snapshot = asyncio.run(scenario())
    assert snapshot["submitted"] == 3
    assert snapshot["admitted"] == 2
    assert snapshot["shed"] == 1
    assert snapshot["completed"] == 1
    assert snapshot["failed"] == 1
    assert snapshot["inflight"] == 0
    assert snapshot["queued"] == 0
    assert snapshot["peak_inflight"] == 1
    assert snapshot["shed_rate"] == pytest.approx(1 / 3)
    # The shed signal is a distinct, catchable serving error.
    assert issubclass(OverloadError, ServingError)


def test_admission_controller_validates_bounds():
    with pytest.raises(ValueError):
        AdmissionController(0, 4)
    with pytest.raises(ValueError):
        AdmissionController(4, -1)


def test_default_start_method_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_START_METHOD", "spawn")
    assert default_start_method() == "spawn"
    monkeypatch.setenv("REPRO_SHARD_START_METHOD", "not-a-method")
    with pytest.raises(ValueError):
        default_start_method()
    monkeypatch.delenv("REPRO_SHARD_START_METHOD")
    assert default_start_method() in ("forkserver", "spawn")


# --------------------------------------------------------------------------- #
# The gateway, end to end (spawns real worker processes)
# --------------------------------------------------------------------------- #
def test_gateway_serves_row_identical_results_across_shards():
    baseline = SPEC.build_backend()
    try:
        expected = baseline.execute(SQL).to_rows()
    finally:
        baseline.close()

    async def scenario():
        async with AsyncGateway(SPEC, n_shards=2) as gateway:
            session_ids = [f"user-{i}" for i in range(6)]
            responses = await asyncio.gather(
                *(gateway.execute(sid, SQL) for sid in session_ids)
            )
            for sid, response in zip(session_ids, responses):
                # Affinity: the response came from the session's home shard.
                assert response.shard == gateway.shard_for(sid)
            stats = await gateway.stats()
            return responses, stats

    responses, stats = asyncio.run(scenario())
    for response in responses:
        assert response.rows == expected
        assert response.payload_bytes > 0
        assert response.total_seconds > 0
    serving = stats["serving"]
    assert serving["n_shards"] == 2
    assert serving["sessions"] == 6
    assert serving["requests"] == 6
    assert serving["shed"] == 0
    # Per-shard session counts are the routing function's partition.
    by_shard = {s["shard"]: s["sessions"] for s in stats["shards"]}
    for shard in range(2):
        assert by_shard[shard] == sum(
            1 for i in range(6) if shard_for(f"user-{i}", 2) == shard
        )


def test_gateway_coalesces_identical_queries_within_a_shard():
    # Pick sessions that all live on shard 0, so their identical queries
    # meet in one worker's single-flight scheduler / server cache.
    co_resident = [f"sess-{i}" for i in range(40) if shard_for(f"sess-{i}", 2) == 0][:6]
    assert len(co_resident) == 6

    async def scenario():
        async with AsyncGateway(SPEC, n_shards=2) as gateway:
            await asyncio.gather(
                *(gateway.execute(sid, SQL) for sid in co_resident)
            )
            return await gateway.stats()

    stats = asyncio.run(scenario())
    serving = stats["serving"]
    # Single-flight + publish-before-retire: one backend execution total.
    assert serving["queries_executed"] == 1
    assert serving["requests"] == 6
    scheduler = serving["scheduler"]
    assert scheduler["submitted"] >= 1


def test_gateway_session_export_restore_roundtrip():
    async def scenario():
        async with AsyncGateway(SPEC, n_shards=2) as gateway:
            await gateway.execute("alice", SQL)
            state = await gateway.export_session("alice")
            assert state["session_id"] == "alice"
            assert state["requests"] == 1
            assert len(state["cache_entries"]) == 1
            # The state is genuinely picklable (it crossed the wire once
            # already, but pin the contract explicitly).
            pickle.loads(pickle.dumps(state))
            # Restoring over a live session needs replace.
            with pytest.raises(ShardError) as excinfo:
                await gateway.restore_session(state)
            assert excinfo.value.error_type == "ValueError"
            shard = await gateway.restore_session(state, replace=True)
            assert shard == gateway.shard_for("alice")
            # The restored session kept its client cache: serving the
            # same query again is a client-cache hit.
            response = await gateway.execute("alice", SQL)
            assert response.cache_level == "client"
            return await gateway.stats()

    stats = asyncio.run(scenario())
    assert stats["serving"]["sessions"] == 1


def test_gateway_overload_sheds_with_distinct_error_and_counts():
    async def scenario():
        async with AsyncGateway(
            SPEC, n_shards=2, max_inflight=1, max_queue_depth=0
        ) as gateway:
            outcomes = await asyncio.gather(
                *(gateway.execute(f"user-{i}", SQL) for i in range(8)),
                return_exceptions=True,
            )
            return outcomes, await gateway.stats()

    outcomes, stats = asyncio.run(scenario())
    shed = [o for o in outcomes if isinstance(o, OverloadError)]
    served = [o for o in outcomes if not isinstance(o, BaseException)]
    # Nothing hung and nothing was silently dropped: every request is
    # accounted for as served or shed with the distinct error.
    assert len(shed) + len(served) == 8
    assert shed, "tiny admission budget never shed"
    assert served, "admission shed everything"
    serving = stats["serving"]
    assert serving["shed"] == len(shed)
    assert serving["admission"]["shed"] == len(shed)
    assert serving["admission"]["completed"] == len(served)


def test_gateway_worker_crash_fails_requests_instead_of_hanging():
    async def scenario():
        async with AsyncGateway(SPEC, n_shards=2) as gateway:
            await asyncio.gather(
                *(gateway.execute(f"user-{i}", SQL) for i in range(4))
            )
            victim = gateway.shard_for("user-0")
            gateway._shards[victim].process.kill()
            # The reader task notices EOF and fails pending futures; any
            # later call to the dead shard raises ShardError promptly.
            await asyncio.sleep(0.3)
            with pytest.raises(ShardError):
                await gateway.execute("user-0", SQL)
            # Surviving shards keep serving.
            survivor = next(
                f"user-{i}" for i in range(8)
                if gateway.shard_for(f"user-{i}") != victim
            )
            response = await gateway.execute(survivor, SQL)
            assert response.rows
            stats = await gateway.stats()
            assert stats["serving"]["live_shards"] == 1
            assert any("error" in s for s in stats["shards"])

    asyncio.run(scenario())


def test_gateway_close_is_idempotent_and_start_validates():
    with pytest.raises(BenchmarkError):
        AsyncGateway(SPEC, n_shards=0)

    async def scenario():
        gateway = AsyncGateway(SPEC, n_shards=2)
        assert await gateway.close() is None  # never started
        gateway = AsyncGateway(SPEC, n_shards=2)
        await gateway.start()
        await gateway.start()  # idempotent
        assert len(gateway._shards) == 2
        await gateway.execute("alice", SQL)
        final = await gateway.close()
        assert final["serving"]["requests"] == 1
        assert await gateway.close() is None  # idempotent
        for handle in gateway._shards:
            assert not handle.process.is_alive()

    asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# Open-loop load generation
# --------------------------------------------------------------------------- #
def test_open_loop_requests_interleave_sessions_round_robin():
    requests = open_loop_requests("sliding_brush", n_sessions=3, queries_per_session=2)
    assert len(requests) == 6
    # Step 0 of every session arrives before step 1 of any session.
    assert [sid for sid, _ in requests[:3]] == ["user-0", "user-1", "user-2"]
    assert [sid for sid, _ in requests[3:]] == ["user-0", "user-1", "user-2"]
    # sliding_brush thresholds are globally unique: no repeated SQL.
    assert len({sql for _, sql in requests}) == 6


def test_threaded_tier_serves_and_reports_gateway_shaped_stats():
    async def scenario():
        async with ThreadedTier(SPEC, max_inflight=4, max_queue_depth=8) as tier:
            responses = await asyncio.gather(
                *(tier.execute(f"user-{i}", SQL) for i in range(4))
            )
            stats = await tier.stats()
            return responses, stats

    responses, stats = asyncio.run(scenario())
    rows = responses[0].rows
    assert rows and all(response.rows == rows for response in responses)
    serving = stats["serving"]
    assert serving["n_shards"] == 1
    assert serving["sessions"] == 4
    assert serving["requests"] == 4
    assert serving["queries_executed"] == 1  # coalesced/cached in one process
    assert serving["admission"]["submitted"] == 4


@pytest.mark.parametrize("tier", ["threaded", "sharded"])
def test_open_loop_point_rows_identical_and_accounted(tier):
    point = run_serving_point(
        tier,
        scenario="sliding_brush",
        n_sessions=4,
        queries_per_session=3,
        arrival_rate=200.0,
        n_rows=300,
        n_shards=2,
        max_workers=2,
    )
    assert point.completed == point.n_requests == 12
    assert point.shed == 0 and point.failed == 0
    assert point.matches_serial, point.mismatched_queries
    assert point.throughput_rps > 0
    p = point.percentiles
    assert 0.0 < p["p50"] <= p["p95"] <= p["p99"]
    assert len(point.latencies) == 12
    assert point.serving["shed"] == 0
    assert saturation_throughput([point], tier) == point.throughput_rps


def test_open_loop_overload_is_shed_not_hung():
    point = run_serving_point(
        "sharded",
        scenario="sliding_brush",
        n_sessions=4,
        queries_per_session=3,
        arrival_rate=5_000.0,
        n_rows=300,
        n_shards=2,
        max_workers=2,
        max_inflight=1,
        max_queue_depth=0,
    )
    assert point.shed > 0
    assert point.failed == 0
    assert point.completed + point.shed == point.n_requests
    assert point.serving["shed"] == point.shed
    assert point.matches_serial, point.mismatched_queries


def test_run_serving_point_validates_tier_and_rate():
    with pytest.raises(BenchmarkError):
        run_serving_point("bogus")
    with pytest.raises(BenchmarkError):
        run_serving_point("threaded", arrival_rate=0.0, n_rows=300)
