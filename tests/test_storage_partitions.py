"""Partitioned storage: PartitionedTable, concat_all, zone maps, catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.storage import (
    Catalog,
    Column,
    ColumnZone,
    PartitionedTable,
    Table,
    compute_zone_map,
)
from repro.storage.statistics import zone_maps_range_rows


def _table(n: int = 100) -> Table:
    return Table.from_columns(
        {
            "t": [float(i) for i in range(n)],
            "v": [None if i % 10 == 0 else float(i % 7) for i in range(n)],
            "g": [None if i % 9 == 0 else "ab"[i % 2] for i in range(n)],
        },
        name="data",
    )


# --------------------------------------------------------------------------- #
# PartitionedTable
# --------------------------------------------------------------------------- #


class TestPartitionedTable:
    def test_from_table_splits_into_row_ranges(self):
        table = PartitionedTable.from_table(_table(100), target_rows=30)
        assert table.num_partitions == 4
        assert table.partition_bounds() == [(0, 30), (30, 60), (60, 90), (90, 100)]
        assert table.num_rows == 100
        assert [table.partition_num_rows(i) for i in range(4)] == [30, 30, 30, 10]

    def test_partitions_concatenate_back_to_the_table(self):
        base = _table(57)
        table = PartitionedTable.from_table(base, target_rows=10)
        merged = Table.concat_all(table.partitions())
        assert merged.to_rows() == base.to_rows()

    def test_partition_views_are_zero_copy(self):
        table = PartitionedTable.from_table(_table(40), target_rows=10)
        part = table.partition(1)
        assert part.column("t").values.base is not None
        assert np.shares_memory(part.column("t").values, table.column("t").values)

    def test_behaves_like_a_table(self):
        table = PartitionedTable.from_table(_table(20), target_rows=6)
        assert table.column_names() == ["t", "v", "g"]
        filtered = table.filter(table.column("t").values < 5.0)
        assert filtered.num_rows == 5
        assert not isinstance(filtered, PartitionedTable)

    def test_repartition_and_renamed_preserve_structure(self):
        table = PartitionedTable.from_table(_table(100), target_rows=50)
        finer = table.repartition(10)
        assert finer.num_partitions == 10
        renamed = finer.renamed("other")
        assert isinstance(renamed, PartitionedTable)
        assert renamed.name == "other"
        assert renamed.partition_bounds() == finer.partition_bounds()

    def test_empty_table_is_one_empty_partition(self):
        table = PartitionedTable.from_table(Table.empty(["a", "b"]), target_rows=10)
        assert table.num_partitions == 1
        assert table.partition(0).num_rows == 0

    def test_invalid_boundaries_rejected(self):
        base = _table(10)
        with pytest.raises(ValueError):
            PartitionedTable(base.columns(), boundaries=[0, 5])  # must end at n
        with pytest.raises(ValueError):
            PartitionedTable(base.columns(), boundaries=[0, 5, 5, 10])
        with pytest.raises(ValueError):
            PartitionedTable.from_table(base, target_rows=0)


# --------------------------------------------------------------------------- #
# Table.concat_all
# --------------------------------------------------------------------------- #


class TestConcatAll:
    def test_matches_pairwise_concat(self):
        pieces = [_table(10), _table(3), _table(7)]
        pairwise = pieces[0].concat(pieces[1]).concat(pieces[2])
        assert Table.concat_all(pieces).to_rows() == pairwise.to_rows()

    def test_single_and_empty_inputs(self):
        table = _table(5)
        assert Table.concat_all([table]).to_rows() == table.to_rows()
        with pytest.raises(ValueError):
            Table.concat_all([])

    def test_mixed_numeric_and_string_pieces_promote(self):
        numeric = Table.from_columns({"x": [1.0, 2.0]})
        stringy = Table.from_columns({"x": ["a", None]})
        merged = Table.concat_all([numeric, stringy, numeric])
        assert merged.column("x").to_pylist() == [1, 2, "a", None, 1, 2]

    def test_zero_row_pieces_keep_schema(self):
        table = _table(4)
        merged = Table.concat_all([table.slice(0, 0), table, table.slice(0, 0)])
        assert merged.to_rows() == table.to_rows()

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Table.concat_all([_table(2), Table.from_columns({"x": [1]})])


# --------------------------------------------------------------------------- #
# Zone maps
# --------------------------------------------------------------------------- #


class TestZoneMaps:
    def test_compute_zone_map_numeric_and_string(self):
        zone_map = compute_zone_map(_table(50))
        t = zone_map.column("t")
        assert (t.minimum, t.maximum, t.null_count) == (0.0, 49.0, 0)
        g = zone_map.column("g")
        assert g.minimum is None and g.maximum is None
        assert g.null_count == sum(1 for i in range(50) if i % 9 == 0)

    def test_all_null_column_zone(self):
        zone_map = compute_zone_map(Table.from_columns({"x": [None, None]}))
        zone = zone_map.column("x")
        assert zone.minimum is None and zone.non_null == 0
        assert not zone.may_contain_range(0.0, 10.0)
        assert not zone.may_contain_range(None, None)

    def test_may_contain_range_boundaries(self):
        zone = ColumnZone(num_rows=10, null_count=0, minimum=10.0, maximum=20.0)
        assert zone.may_contain_range(None, None)
        assert zone.may_contain_range(20.0, None)
        assert not zone.may_contain_range(20.0, None, low_inclusive=False)
        assert zone.may_contain_range(None, 10.0)
        assert not zone.may_contain_range(None, 10.0, high_inclusive=False)
        assert not zone.may_contain_range(21.0, None)
        assert not zone.may_contain_range(None, 9.0)
        # Empty interval (low > high) can never match.
        assert not zone.may_contain_range(15.0, 12.0)

    def test_range_fraction_uses_zone_span(self):
        zone = ColumnZone(num_rows=100, null_count=0, minimum=0.0, maximum=100.0)
        assert zone.range_fraction(0.0, 50.0) == pytest.approx(0.5)
        assert zone.range_fraction(200.0, 300.0) == 0.0
        nullish = ColumnZone(num_rows=100, null_count=50, minimum=0.0, maximum=100.0)
        assert nullish.range_fraction(None, None) == pytest.approx(0.5)

    def test_zone_maps_range_rows_sums_partitions(self):
        table = PartitionedTable.from_table(_table(100), target_rows=25)
        zone_maps = [compute_zone_map(part) for part in table.partitions()]
        # t is 0..99 uniformly: a quarter-span window ~ 25 rows.
        rows = zone_maps_range_rows(zone_maps, "t", 0.0, 24.0)
        assert rows == pytest.approx(24.0, abs=3.0)
        assert zone_maps_range_rows(zone_maps, "missing", 0.0, 1.0) is None


# --------------------------------------------------------------------------- #
# Catalog integration
# --------------------------------------------------------------------------- #


class TestCatalogZoneMaps:
    def test_partitioned_registration_preserved(self):
        catalog = Catalog()
        catalog.register("data", PartitionedTable.from_table(_table(60), 20))
        stored = catalog.get("data")
        assert isinstance(stored, PartitionedTable)
        assert stored.num_partitions == 3
        assert stored.name == "data"

    def test_zone_maps_cached_and_invalidated(self):
        catalog = Catalog()
        catalog.register("data", PartitionedTable.from_table(_table(60), 20))
        first = catalog.zone_maps("data")
        assert first is not None and len(first) == 3
        assert catalog.zone_maps("data") is first  # cached
        catalog.register("data", PartitionedTable.from_table(_table(60), 10), replace=True)
        second = catalog.zone_maps("data")
        assert second is not first and len(second) == 6

    def test_plain_tables_have_no_zone_maps(self):
        catalog = Catalog()
        catalog.register("data", _table(10))
        assert catalog.zone_maps("data") is None
        with pytest.raises(CatalogError):
            catalog.zone_maps("unknown")

    def test_zone_map_column_type(self):
        zone = compute_zone_map(
            Table([Column.from_values("x", [1.0, None, 3.0])])
        ).column("x")
        assert zone == ColumnZone(num_rows=3, null_count=1, minimum=1.0, maximum=3.0)
