"""Zone-map pruning: conjunct extraction, pushdown, executor, estimator.

Covers the satellite edges explicitly: NULL-only partitions, open-ended
BETWEEN, and predicates on computed columns (which must never prune).
"""

from __future__ import annotations

import pytest

from repro.sql.engine import Database
from repro.sql.optimizer import (
    PruningInterval,
    PruningNullCheck,
    optimize_plan,
    prune_partitions,
    pruning_conjuncts,
)
from repro.sql.parser import parse_sql
from repro.sql.planner import (
    FilterNode,
    ProjectNode,
    ScanNode,
    SubqueryNode,
    build_logical_plan,
    partitionable_prefix,
)
from repro.storage import Table, compute_zone_map


def _predicate(sql_where: str):
    """The optimised WHERE predicate of ``SELECT * FROM t WHERE ...``."""
    plan = optimize_plan(build_logical_plan(parse_sql(f"SELECT * FROM t WHERE {sql_where}")))
    node = plan.root
    while not isinstance(node, FilterNode):
        node = node.children()[0]
    return node.predicate


# --------------------------------------------------------------------------- #
# Conjunct extraction
# --------------------------------------------------------------------------- #


class TestPruningConjuncts:
    def test_comparisons_both_directions(self):
        assert pruning_conjuncts(_predicate("x >= 10")) == [PruningInterval("x", 10.0, None)]
        assert pruning_conjuncts(_predicate("10 >= x")) == [PruningInterval("x", None, 10.0)]
        assert pruning_conjuncts(_predicate("x < 5")) == [
            PruningInterval("x", None, 5.0, high_inclusive=False)
        ]
        assert pruning_conjuncts(_predicate("x = 3")) == [PruningInterval("x", 3.0, 3.0)]

    def test_conjunction_collects_both_sides(self):
        conjuncts = pruning_conjuncts(_predicate("x >= 10 AND y < 2 AND g = 'a'"))
        assert PruningInterval("x", 10.0, None) in conjuncts
        assert PruningInterval("y", None, 2.0, high_inclusive=False) in conjuncts
        # String equality cannot bound the value but implies NOT NULL.
        assert PruningNullCheck("g", negated=True) in conjuncts

    def test_between_and_open_ended_between(self):
        assert pruning_conjuncts(_predicate("x BETWEEN 3 AND 7")) == [
            PruningInterval("x", 3.0, 7.0)
        ]
        # Open-ended BETWEEN: a non-literal bound leaves that side open.
        assert pruning_conjuncts(_predicate("x BETWEEN 3 AND y")) == [
            PruningInterval("x", 3.0, None)
        ]
        assert pruning_conjuncts(_predicate("x NOT BETWEEN 3 AND 7")) == []

    def test_in_list_and_null_checks(self):
        assert pruning_conjuncts(_predicate("x IN (5, 1, 3)")) == [
            PruningInterval("x", 1.0, 5.0)
        ]
        assert pruning_conjuncts(_predicate("g IN ('a', 'b')")) == [
            PruningNullCheck("g", negated=True)
        ]
        assert pruning_conjuncts(_predicate("x IS NULL")) == [PruningNullCheck("x")]
        assert pruning_conjuncts(_predicate("x IS NOT NULL")) == [
            PruningNullCheck("x", negated=True)
        ]

    def test_disjunctions_and_negations_never_prune(self):
        assert pruning_conjuncts(_predicate("x > 5 OR y < 2")) == []
        assert pruning_conjuncts(_predicate("NOT x > 5")) == []
        assert pruning_conjuncts(_predicate("x NOT IN (1, 2)")) == []
        # But analysable conjuncts survive next to unanalysable ones.
        assert pruning_conjuncts(_predicate("(x > 5 OR y < 2) AND z >= 1")) == [
            PruningInterval("z", 1.0, None)
        ]

    def test_computed_columns_never_prune(self):
        assert pruning_conjuncts(_predicate("x + 1 > 10")) == []
        assert pruning_conjuncts(_predicate("ABS(x) > 10")) == []
        assert pruning_conjuncts(_predicate("x * 2 BETWEEN 1 AND 5")) == []
        assert pruning_conjuncts(_predicate("ABS(x) IS NULL")) == []


# --------------------------------------------------------------------------- #
# Zone intersection
# --------------------------------------------------------------------------- #


def _zone_maps():
    """Three partitions: t in [0,9] all-null v; t in [10,19]; t in [20,29]."""
    parts = [
        Table.from_columns({"t": [float(i) for i in range(0, 10)], "v": [None] * 10}),
        Table.from_columns(
            {"t": [float(i) for i in range(10, 20)], "v": [float(i) for i in range(10)]}
        ),
        Table.from_columns({"t": [float(i) for i in range(20, 30)], "v": [None, 1.0] * 5}),
    ]
    return [compute_zone_map(part) for part in parts]


class TestPrunePartitions:
    def test_range_pruning(self):
        zone_maps = _zone_maps()
        assert prune_partitions(zone_maps, [PruningInterval("t", 12.0, 14.0)]) == [1]
        assert prune_partitions(zone_maps, [PruningInterval("t", None, 9.0)]) == [0]
        assert prune_partitions(zone_maps, [PruningInterval("t", 100.0, None)]) == []
        assert prune_partitions(zone_maps, []) == [0, 1, 2]

    def test_null_only_partition_pruned_by_comparison(self):
        zone_maps = _zone_maps()
        # v is entirely NULL in partition 0: no comparison can match there.
        assert prune_partitions(zone_maps, [PruningInterval("v", None, None)]) == [1, 2]
        assert prune_partitions(zone_maps, [PruningNullCheck("v", negated=True)]) == [1, 2]

    def test_is_null_keeps_only_partitions_with_nulls(self):
        assert prune_partitions(_zone_maps(), [PruningNullCheck("v")]) == [0, 2]

    def test_unknown_columns_keep_everything(self):
        assert prune_partitions(_zone_maps(), [PruningInterval("q", 0.0, 1.0)]) == [0, 1, 2]


# --------------------------------------------------------------------------- #
# Predicate pushdown (the pass that feeds pruning)
# --------------------------------------------------------------------------- #


class TestPredicatePushdown:
    def test_filter_pushes_below_passthrough_projection(self):
        plan = optimize_plan(
            build_logical_plan(parse_sql("SELECT x, y FROM (SELECT * FROM t) AS s WHERE x > 1"))
        )
        # The filter must reach the scan inside the subquery.
        prefix = partitionable_prefix(plan.root)
        assert prefix is not None
        assert isinstance(prefix.scan, ScanNode)
        assert len(prefix.scan_filters) == 1

    def test_filter_blocked_by_computed_alias(self):
        plan = optimize_plan(
            build_logical_plan(
                parse_sql("SELECT x + 1 AS z FROM (SELECT x + 1 AS z FROM t) AS s WHERE z > 1")
            )
        )
        prefix = partitionable_prefix(plan.root)
        assert prefix is not None
        # The filter references the computed alias: it stays above the
        # projection and must NOT be treated as scan-adjacent.
        assert prefix.scan_filters == ()

    def test_prefix_stops_at_aggregates(self):
        plan = optimize_plan(
            build_logical_plan(parse_sql("SELECT g, COUNT(*) AS n FROM t GROUP BY g"))
        )
        assert partitionable_prefix(plan.root) is None
        # ... but the aggregate's child is a (bare-scan) prefix.
        aggregate = plan.root
        prefix = partitionable_prefix(aggregate.child)
        assert prefix is not None and prefix.nodes == ()

    def test_prefix_walks_subqueries(self):
        plan = optimize_plan(
            build_logical_plan(parse_sql("SELECT * FROM (SELECT x FROM t WHERE x > 2) AS s"))
        )
        prefix = partitionable_prefix(plan.root)
        assert prefix is not None
        assert any(isinstance(n, SubqueryNode) for n in prefix.nodes)
        assert any(isinstance(n, ProjectNode) for n in prefix.nodes)
        assert len(prefix.scan_filters) == 1


# --------------------------------------------------------------------------- #
# End-to-end: executor counters and estimator integration
# --------------------------------------------------------------------------- #


def _partitioned_db(parallelism: int = 2) -> Database:
    db = Database(parallelism=parallelism)
    rows = [
        {
            "t": float(i),
            "v": None if i < 100 else float(i % 13),
            "g": "abc"[i % 3],
        }
        for i in range(1000)
    ]
    db.register_rows("data", rows)
    db.repartition("data", 100)
    return db


class TestExecutorPruning:
    def test_counters_and_results(self):
        db = _partitioned_db()
        result = db.execute("SELECT t, v FROM data WHERE t >= 350 AND t < 450")
        assert result.num_rows == 100
        assert result.stats.partitions_scanned == 2
        assert result.stats.partitions_pruned == 8
        assert result.stats.rows_scanned == 200

    def test_null_only_partition_pruned(self):
        db = _partitioned_db()
        # v is NULL throughout partition 0 — any comparison skips it.
        result = db.execute("SELECT COUNT(*) AS n FROM data WHERE v >= 0")
        assert result.to_rows() == [{"n": 900}]
        assert result.stats.partitions_pruned == 1

    def test_is_null_prunes_non_null_partitions(self):
        db = _partitioned_db()
        result = db.execute("SELECT COUNT(*) AS n FROM data WHERE v IS NULL")
        assert result.to_rows() == [{"n": 100}]
        assert result.stats.partitions_scanned == 1
        assert result.stats.partitions_pruned == 9

    def test_computed_predicate_scans_everything(self):
        db = _partitioned_db()
        result = db.execute("SELECT COUNT(*) AS n FROM data WHERE t + 0 >= 900")
        assert result.to_rows() == [{"n": 100}]
        assert result.stats.partitions_scanned == 10
        assert result.stats.partitions_pruned == 0

    def test_all_partitions_pruned_yields_empty_result(self):
        db = _partitioned_db()
        result = db.execute("SELECT t, g FROM data WHERE t > 5000")
        assert result.num_rows == 0
        assert result.table.column_names() == ["t", "g"]
        assert result.stats.partitions_pruned == 10

    def test_metrics_accumulate(self):
        db = _partitioned_db()
        db.execute("SELECT t FROM data WHERE t < 100")
        db.execute("SELECT t FROM data WHERE t >= 900")
        snapshot = db.metrics.snapshot()
        assert snapshot["partitions_scanned"] == 2.0
        assert snapshot["partitions_pruned"] == 18.0
        assert snapshot["morsel_tasks"] >= 2.0

    def test_explain_reflects_pruning(self):
        db = _partitioned_db()
        estimate = db.explain("SELECT * FROM data WHERE t >= 350 AND t < 450")
        text = estimate.pretty()
        assert "[partitions 2/10]" in text
        flat = Database()
        flat.register_rows("data", [{"t": float(i)} for i in range(1000)])
        flat_estimate = flat.explain("SELECT * FROM data WHERE t >= 350 AND t < 450")
        assert estimate.total_cost < flat_estimate.total_cost

    def test_serial_engine_prunes_too(self):
        db = _partitioned_db(parallelism=1)
        result = db.execute("SELECT SUM(v) AS s FROM data WHERE t BETWEEN 200 AND 299")
        assert result.stats.partitions_scanned == 1
        assert result.stats.partitions_pruned == 9


class TestSystemStats:
    def test_partitioning_section_exposed(self, histogram_spec):
        from repro.core.system import VegaPlusSystem
        from repro.datasets import generate_dataset

        db = Database(parallelism=2)
        db.register_rows("flights", generate_dataset("flights", 600, seed=3))
        db.repartition("flights", 150)
        system = VegaPlusSystem(histogram_spec, db)
        system.optimize(anticipated_interactions=[{"maxbins": 30}])
        system.initialize()
        system.interact({"min_delay": 60})
        stats = system.stats()
        assert "partitioning" in stats
        section = stats["partitioning"]
        assert set(section) == {
            "partitions_scanned",
            "partitions_pruned",
            "pruning_rate",
            "morsel_tasks",
            "morsel_tasks_dispatched",
            "morsel_tasks_inline",
            "morsel_bytes_shared",
            "morsel_bytes_pickled",
            "morsel_process_fallbacks",
            "morsel_executor",
        }
        assert 0.0 <= section["pruning_rate"] <= 1.0
        assert section["morsel_executor"] == "thread"
        # Thread engines share nothing; every morsel is a thread/inline task.
        assert section["morsel_bytes_shared"] == 0.0

    def test_pruning_rate_math(self):
        db = _partitioned_db()
        db.execute("SELECT t FROM data WHERE t < 100")
        snapshot = db.metrics.snapshot()
        rate = snapshot["partitions_pruned"] / (
            snapshot["partitions_pruned"] + snapshot["partitions_scanned"]
        )
        assert rate == pytest.approx(0.9)
