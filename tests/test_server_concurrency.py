"""Tests for the concurrent serving runtime (repro.server) and the
thread-safety contracts it forces through the lower layers."""

from __future__ import annotations

import threading

import pytest

from repro.backends import backend_names, create_backend
from repro.bench.concurrency import CONCURRENCY_SCENARIOS, build_sessions, run_scenario
from repro.errors import BenchmarkError
from repro.net.channel import NetworkModel
from repro.net.middleware import MiddlewareServer
from repro.server import RequestScheduler, SessionManager
from repro.sql import Database


# --------------------------------------------------------------------------- #
# RequestScheduler: single-flight coalescing
# --------------------------------------------------------------------------- #


def test_single_flight_coalesces_concurrent_identical_requests():
    """N concurrent requests for one key share exactly one execution."""
    scheduler = RequestScheduler(max_workers=2)
    release = threading.Event()
    executions = []

    def slow():
        release.wait(timeout=5)
        executions.append(1)
        return "value"

    outcomes = [None] * 4

    def submit(i):
        outcomes[i] = scheduler.run("k", slow)

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    # Wait until all four submissions are registered, then let the leader run.
    for _ in range(500):
        with scheduler._lock:
            if scheduler.stats.submitted == 4:
                break
        threading.Event().wait(0.005)
    release.set()
    for thread in threads:
        thread.join()

    assert len(executions) == 1
    assert all(outcome.value == "value" for outcome in outcomes)
    assert scheduler.stats.executed == 1
    assert scheduler.stats.coalesced == 3
    assert sum(1 for outcome in outcomes if outcome.coalesced) == 3
    assert scheduler.stats.coalescing_rate == pytest.approx(0.75)
    scheduler.shutdown()


def test_single_flight_distinct_keys_execute_separately():
    scheduler = RequestScheduler(max_workers=4)
    a = scheduler.run("a", lambda: 1)
    b = scheduler.run("b", lambda: 2)
    assert (a.value, b.value) == (1, 2)
    assert not a.coalesced and not b.coalesced
    assert scheduler.stats.executed == 2
    assert scheduler.stats.coalesced == 0
    scheduler.shutdown()


def test_single_flight_retires_key_after_completion():
    """Sequential identical requests re-execute (caching is not its job)."""
    scheduler = RequestScheduler(max_workers=2)
    counter = []
    for _ in range(3):
        scheduler.run("k", lambda: counter.append(1))
    assert len(counter) == 3
    assert scheduler.stats.executed == 3
    assert scheduler.in_flight_count() == 0
    scheduler.shutdown()


def test_single_flight_propagates_errors_and_recovers():
    scheduler = RequestScheduler(max_workers=2)

    def boom():
        raise ValueError("backend exploded")

    with pytest.raises(ValueError, match="backend exploded"):
        scheduler.run("k", boom)
    assert scheduler.stats.failed == 1
    # The key is retired: a later request executes fresh and succeeds.
    assert scheduler.run("k", lambda: "fine").value == "fine"
    scheduler.shutdown()


def test_scheduler_rejects_after_shutdown_and_bad_config():
    scheduler = RequestScheduler(max_workers=1)
    scheduler.shutdown()
    with pytest.raises(RuntimeError):
        scheduler.run("k", lambda: 1)
    with pytest.raises(ValueError):
        RequestScheduler(max_workers=0)


def test_scheduler_shutdown_is_idempotent_and_freezes_final_stats():
    """Repeated/concurrent shutdowns return ONE frozen final snapshot."""
    scheduler = RequestScheduler(max_workers=2)
    scheduler.run("a", lambda: 1)
    scheduler.run("b", lambda: 2)
    first = scheduler.shutdown()
    assert first["submitted"] == 2
    assert first["executed"] == 2
    # Every later call — including racing ones — returns the same
    # frozen snapshot object, not a re-drained recount.
    assert scheduler.shutdown() is first
    snapshots = []
    threads = [
        threading.Thread(target=lambda: snapshots.append(scheduler.shutdown()))
        for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(snapshot is first for snapshot in snapshots)


# --------------------------------------------------------------------------- #
# SessionManager / ClientSession
# --------------------------------------------------------------------------- #


@pytest.fixture()
def manager(flights_db):
    manager = SessionManager.for_backend(flights_db, max_workers=2)
    yield manager
    manager.shutdown()


SQL = "SELECT carrier, COUNT(*) AS n FROM flights GROUP BY carrier ORDER BY carrier"


def test_sessions_have_isolated_client_caches(manager):
    alice = manager.create_session("alice")
    bob = manager.create_session("bob")

    first = alice.execute(SQL)
    again = alice.execute(SQL)
    other = bob.execute(SQL)

    assert first.cache_level is None
    assert again.cache_level == "client"  # alice's own cache
    assert other.cache_level == "server"  # bob pays the round trip once
    assert other.rows == first.rows
    assert manager.middleware.queries_executed == 1


def test_sessions_carry_their_own_network_profiles(manager):
    lan = manager.create_session("lan", network=NetworkModel.lan())
    wan = manager.create_session("wan", network=NetworkModel.wan())
    lan_seconds = lan.execute(SQL).network_seconds
    manager.middleware.reset_caches()
    lan.cache.clear()
    wan_seconds = wan.execute(SQL).network_seconds
    assert wan_seconds > lan_seconds


def test_session_manager_bookkeeping(manager):
    auto = manager.create_session()
    manager.create_session("named")
    assert len(manager) == 2
    assert "named" in manager.session_ids()
    assert manager.get("named").session_id == "named"
    with pytest.raises(ValueError):
        manager.create_session("named")
    with pytest.raises(KeyError):
        manager.get("ghost")
    manager.close_session(auto.session_id)
    assert len(manager) == 1


def test_session_manager_shutdown_returns_final_scheduler_snapshot(flights_db):
    manager = SessionManager.for_backend(flights_db, max_workers=2)
    manager.create_session("alice").execute(SQL)
    final = manager.shutdown()
    assert final is not None and final["submitted"] == 1
    assert manager.shutdown() is final  # idempotent, same frozen snapshot
    assert len(manager) == 0
    # Without a scheduler there is no snapshot to return.
    bare = SessionManager(MiddlewareServer(flights_db))
    assert bare.shutdown() is None


def test_session_export_restore_roundtrip(manager):
    import pickle

    alice = manager.create_session("alice", network=NetworkModel.wan())
    alice.execute(SQL)
    state = pickle.loads(pickle.dumps(manager.export_session("alice")))
    assert state["requests"] == 1 and len(state["cache_entries"]) == 1

    # Export leaves the source live; restoring over it needs replace.
    assert manager.get("alice") is alice
    with pytest.raises(ValueError):
        manager.restore_session(state)
    restored = manager.restore_session(state, replace=True)
    assert restored is not alice
    assert restored.network.rtt_seconds == alice.network.rtt_seconds
    assert restored.latencies == alice.latencies
    # The client cache travelled by value: the same query is a client
    # hit on the restored session without touching the server again.
    executed_before = manager.middleware.queries_executed
    response = restored.execute(SQL)
    assert response.cache_level == "client"
    assert manager.middleware.queries_executed == executed_before


def test_session_latency_summary_and_statistics(manager):
    session = manager.create_session("s")
    for _ in range(4):
        session.execute(SQL)
    summary = session.latency_summary()
    assert summary["p50"] <= summary["p95"] <= summary["p99"]
    stats = manager.statistics()
    assert stats["sessions"] == 1
    assert stats["requests"] == 4
    assert stats["client_hit_rate"] == pytest.approx(3 / 4)
    assert "latency_percentiles" in stats


def test_client_session_works_as_middleware_for_vega_plus_system(manager, histogram_spec):
    from repro.core.system import VegaPlusSystem

    session = manager.create_session("dashboard-user")
    system = VegaPlusSystem(histogram_spec, middleware=session)
    system.optimize()
    result = system.initialize()
    assert result.total_seconds >= 0
    assert session.requests > 0
    assert system.database is manager.middleware.database


def test_vega_plus_system_requires_database_or_middleware(histogram_spec):
    from repro.core.system import VegaPlusSystem
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError):
        VegaPlusSystem(histogram_spec)


def test_for_backend_refuses_unsafe_backend_with_pool(flights_db, monkeypatch):
    from repro.backends.base import BackendCapabilities
    from repro.backends.embedded import EmbeddedBackend

    unsafe = BackendCapabilities(name="unsafe", thread_safe=False)
    monkeypatch.setattr(EmbeddedBackend, "capabilities", property(lambda self: unsafe))
    with pytest.raises(BenchmarkError, match="thread-safe"):
        SessionManager.for_backend(flights_db, max_workers=4)
    # A single worker is always allowed.
    serial = SessionManager.for_backend(flights_db, max_workers=1)
    serial.shutdown()


# --------------------------------------------------------------------------- #
# Concurrency stress: results must equal the serial baseline
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", backend_names())
@pytest.mark.parametrize("scenario", CONCURRENCY_SCENARIOS)
def test_concurrent_run_matches_serial_baseline(backend, scenario):
    result = run_scenario(
        scenario,
        backend=backend,
        n_sessions=8,
        queries_per_session=4,
        n_rows=400,
        max_workers=4,
    )
    assert result.matches_serial, result.mismatched_queries
    stats = result.scheduler
    assert stats["submitted"] == stats["executed"] + stats["coalesced"]
    # Single-flight + publish-before-retire: each distinct query reaches
    # the backend at most once while it stays cached.
    assert result.queries_executed <= result.unique_queries


def test_crossfilter_storm_with_forced_process_morsel_executor(monkeypatch):
    """The cache-heavy scenario survives the process morsel executor.

    REPRO_MORSEL_EXECUTOR=process with the size floor disabled pushes
    every embedded-backend morsel across the process boundary while the
    serving tier coalesces the storm's duplicate queries — the two
    process-parallel layers composed must still return row-identical
    results, with coalescing engaged.
    """
    from repro.storage.shared import shared_memory_available

    if not shared_memory_available():
        pytest.skip("multiprocessing.shared_memory unavailable")
    monkeypatch.setenv("REPRO_MORSEL_EXECUTOR", "process")
    monkeypatch.setenv("REPRO_MORSEL_PROCESS_MIN_ROWS", "0")
    result = run_scenario(
        "crossfilter_storm",
        backend="embedded",
        n_sessions=8,
        queries_per_session=4,
        n_rows=400,
        max_workers=4,
    )
    assert result.matches_serial, result.mismatched_queries
    stats = result.scheduler
    assert stats["submitted"] == stats["executed"] + stats["coalesced"]
    # The storm's overlap must actually engage the single-flight path.
    assert stats["coalesced"] > 0
    assert result.queries_executed <= result.unique_queries


def test_build_sessions_shapes_and_validation():
    burst = build_sessions("cold_start_burst", 3, 10)
    assert len(burst) == 3
    assert burst[0] == burst[1] == burst[2]
    storm = build_sessions("crossfilter_storm", 4, 5, seed=1)
    assert all(len(session) == 5 for session in storm)
    with pytest.raises(BenchmarkError):
        build_sessions("nope", 2, 2)
    with pytest.raises(BenchmarkError):
        build_sessions("crossfilter_storm", 0, 2)


# --------------------------------------------------------------------------- #
# Lower layers under concurrency
# --------------------------------------------------------------------------- #


def test_database_plan_cache_and_metrics_survive_concurrent_execution(flights_rows):
    db = Database(keep_query_log=False)
    db.register_rows("flights", flights_rows)
    queries = [
        "SELECT carrier, COUNT(*) AS n FROM flights GROUP BY carrier ORDER BY carrier",
        "SELECT origin, COUNT(*) AS n FROM flights GROUP BY origin ORDER BY origin",
        "SELECT COUNT(*) AS n FROM flights",
    ]
    n_threads, laps = 8, 5
    serial = {sql: db.execute(sql).to_rows() for sql in queries}
    db.metrics.reset()
    db.clear_plan_cache()
    errors = []

    def worker():
        try:
            for _ in range(laps):
                for sql in queries:
                    assert db.execute(sql).to_rows() == serial[sql]
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    total = n_threads * laps * len(queries)
    # No lost increments on any counter.
    assert db.metrics.queries_executed == total
    assert db.metrics.plan_cache_hits + db.metrics.plan_cache_misses == total
    assert db.metrics.plan_cache_hits >= total - len(queries) * n_threads


def test_sqlite_backend_uses_per_thread_connections(flights_rows):
    backend = create_backend("sqlite", keep_query_log=False)
    backend.register_rows("flights", flights_rows)
    sql = "SELECT carrier, COUNT(*) AS n FROM flights GROUP BY carrier ORDER BY carrier"
    expected = backend.execute(sql).to_rows()
    seen = {}
    errors = []

    def worker(i):
        try:
            connection = backend.connection
            seen[i] = id(connection)
            assert connection is backend.connection  # stable per thread
            assert backend.execute(sql).to_rows() == expected
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    # Six worker threads plus the registering thread: distinct connections.
    assert len(set(seen.values())) == 6
    assert backend.connection_count() >= 7
    backend.close()


def test_sqlite_backend_close_prevents_new_connections(flights_rows):
    backend = create_backend("sqlite")
    backend.register_rows("flights", flights_rows)
    backend.close()
    from repro.errors import ExecutionError

    def use():
        with pytest.raises(ExecutionError):
            backend.connection  # noqa: B018 - property raises

    thread = threading.Thread(target=use)
    thread.start()
    thread.join()


def test_capabilities_declare_concurrency_contract():
    embedded = create_backend("embedded").capabilities
    sqlite = create_backend("sqlite").capabilities
    assert embedded.thread_safe and embedded.connection_strategy == "shared"
    assert sqlite.thread_safe and sqlite.connection_strategy == "per-thread"


def test_middleware_serve_is_client_state_free(flights_db):
    """serve() with explicit session state never touches the default cache."""
    middleware = MiddlewareServer(flights_db)
    from repro.net.cache import QueryCache

    private = QueryCache(max_entries=4, name="private", policy="lru")
    first = middleware.serve(SQL, client_cache=private, network=NetworkModel.wan())
    assert first.cache_level is None
    assert len(middleware.client_cache) == 0  # default session untouched
    assert private.contains(middleware.cache_key(SQL))
    again = middleware.serve(SQL, client_cache=private)
    assert again.cache_level == "client"
