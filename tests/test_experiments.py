"""Smoke tests for the experiment runners (tiny configurations).

Full-scale runs live under ``benchmarks/``; these tests only verify that
every table/figure runner produces structurally correct output and that
the headline qualitative findings hold on miniature inputs.
"""

import pytest

from repro.bench.experiments import (
    DEFAULT_MODEL_TEMPLATES,
    MeasurementSet,
    collect_measurements,
    figure6,
    figure7,
    figure8,
    figure9,
    table2,
    table3,
    table4,
    table5,
)
from repro.bench.harness import BenchmarkHarness

SIZES = (800, 1600)
TEMPLATES = ("interactive_histogram", "heatmap_bar")


@pytest.fixture(scope="module")
def harness() -> BenchmarkHarness:
    return BenchmarkHarness(seed=0)


@pytest.fixture(scope="module")
def measurements(harness) -> MeasurementSet:
    return collect_measurements(
        harness, TEMPLATES, SIZES, interactions_per_session=3, max_plans=8
    )


def test_table2_accuracy_shape_and_random_baseline(harness, measurements):
    result = table2(sizes=SIZES, measurement_set=measurements, harness=harness)
    assert set(result.accuracy) == {"RankSVM", "Random Forest", "heuristic", "random"}
    assert result.sizes() == list(SIZES)
    for by_size in result.accuracy.values():
        for accuracy in by_size.values():
            assert 0.0 <= accuracy <= 1.0
    # The random model must hover around 0.5; learned models must beat it.
    for size in SIZES:
        assert 0.2 <= result.accuracy["random"][size] <= 0.8
        assert result.accuracy["Random Forest"][size] >= result.accuracy["random"][size]
    assert "Table 2" in str(result)


def test_table3_selected_latency_bounded_by_optimal(harness, measurements):
    result = table3(sizes=SIZES, measurement_set=measurements, harness=harness)
    assert "optimal" in result.seconds
    for model, by_size in result.seconds.items():
        for size, seconds in by_size.items():
            assert seconds >= result.seconds["optimal"][size] - 1e-9
    assert "Table 3" in str(result)


def test_table4_interactive_accuracy(harness, measurements):
    result = table4(sizes=SIZES, measurement_set=measurements, harness=harness)
    assert set(result.accuracy) == {"RankSVM", "Random Forest", "heuristic", "random"}
    for size in SIZES:
        assert result.accuracy["RankSVM"][size] >= 0.4


def test_table5_consolidation(harness):
    result = table5(
        sizes=(800,), template_name="overview_detail", interactions_per_session=3, harness=harness
    )
    assert "optimal" in result.seconds
    for model in ("RankSVM", "Random Forest", "heuristic"):
        assert result.seconds[model][800] >= result.seconds["optimal"][800] - 1e-9
    assert "Table 5" in str(result)


def test_figure6_points(harness, measurements):
    result = figure6(sizes=SIZES, templates=TEMPLATES, measurement_set=measurements, harness=harness)
    assert result.points
    templates_seen = {t for t, _, _, _ in result.points}
    assert templates_seen == set(TEMPLATES)
    by_template = result.by_template()
    assert all(len(points) >= 2 for points in by_template.values())


def test_figure7_error_distribution(harness, measurements):
    result = figure7(
        size=SIZES[-1], templates=TEMPLATES, harness=harness, measurement_set=measurements
    )
    assert set(result.histograms) == {"RankSVM", "Random Forest", "heuristic", "random"}
    for counts in result.histograms.values():
        assert len(counts) == 10
    for mean_error in result.mean_scaled_error.values():
        assert 0.0 <= mean_error <= 1.0


def test_figure8_vegaplus_vs_vega(harness):
    result = figure8(
        size=8000,
        templates=("interactive_histogram",),
        interactions_per_session=3,
        harness=harness,
    )
    systems = {r["system"] for r in result.rows_data}
    assert systems == {"Vega", "VegaPlus"}
    # At this size the paper's shape holds: VegaPlus wins the session,
    # driven by a much cheaper initial rendering.
    assert result.speedup("interactive_histogram") > 1.0
    vega_row = next(r for r in result.rows_data if r["system"] == "Vega")
    plus_row = next(r for r in result.rows_data if r["system"] == "VegaPlus")
    assert plus_row["initial_seconds"] < vega_row["initial_seconds"]


def test_figure9_scaling_series(harness):
    result = figure9(
        sizes=(800,),
        large_sizes=(2000,),
        template_name="interactive_histogram",
        interactions_per_session=2,
        harness=harness,
    )
    systems = {r["system"] for r in result.rows_data}
    assert systems == {"Vega", "VegaFusion", "VegaPlus"}
    # Vega is dropped at the "large" size, mirroring the paper.
    assert all(r["size"] == 800 for r in result.rows_data if r["system"] == "Vega")
    vegaplus_series = result.series("VegaPlus", "initial_seconds")
    assert len(vegaplus_series) == 2
    assert DEFAULT_MODEL_TEMPLATES  # sanity: default config exposed
