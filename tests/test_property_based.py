"""Property-based tests (hypothesis) for core invariants.

The most important invariant of the whole system is *plan equivalence*:
whatever partitioning the optimizer picks, the rows handed to the renderer
must be the same.  These tests also cover the SQL-vs-dataflow equivalence
of individual operators, the expression translator, the bin computation,
the cache, and the enumerator's validity guarantees.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.enumerator import PlanEnumerator
from repro.sql.executor import (
    distinct_indices_reference,
    group_rows_reference,
    group_rows_vectorized,
    sort_indices_reference,
    sort_indices_vectorized,
)
from repro.storage.table import Table
from repro.dataflow.transforms.bin import compute_bins, nice_bin_step
from repro.expr import evaluate, is_translatable, to_sql
from repro.net.cache import QueryCache
from repro.rewrite import SpecRewriter
from repro.net import MiddlewareServer
from repro.sql import Database
from repro.vega.spec import parse_spec_dict

settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=30
)
settings.load_profile("repro")


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

row_strategy = st.fixed_dictionaries(
    {
        "v": st.one_of(st.none(), finite_floats),
        "w": finite_floats,
        "g": st.sampled_from(["a", "b", "c", "d"]),
    }
)

rows_strategy = st.lists(row_strategy, min_size=1, max_size=40)


# --------------------------------------------------------------------------- #
# SQL engine vs. client dataflow equivalence
# --------------------------------------------------------------------------- #


@settings(max_examples=25)
@given(rows=rows_strategy, threshold=st.floats(min_value=-100, max_value=100))
def test_filter_equivalence_sql_vs_expression(rows, threshold):
    """WHERE v > t must keep exactly the rows the Vega expression keeps."""
    db = Database()
    db.register_rows("t", rows, column_order=["v", "w", "g"])
    sql_rows = db.query_rows(f"SELECT * FROM t WHERE {to_sql('datum.v > cut', {'cut': threshold})}")
    expr_rows = [r for r in rows if evaluate("datum.v > cut", r, {"cut": threshold}) is True]
    assert len(sql_rows) == len(expr_rows)


@settings(max_examples=25)
@given(rows=rows_strategy)
def test_groupby_count_equivalence(rows):
    """SQL GROUP BY count equals a hand-computed Python group count."""
    db = Database()
    db.register_rows("t", rows, column_order=["v", "w", "g"])
    result = db.query_rows("SELECT g, COUNT(*) AS n FROM t GROUP BY g")
    expected: dict[str, int] = {}
    for row in rows:
        expected[row["g"]] = expected.get(row["g"], 0) + 1
    assert {r["g"]: r["n"] for r in result} == expected


@settings(max_examples=25)
@given(rows=rows_strategy)
def test_sum_ignores_nulls(rows):
    db = Database()
    db.register_rows("t", rows, column_order=["v", "w", "g"])
    result = db.query_rows("SELECT SUM(v) AS s, COUNT(v) AS n FROM t")[0]
    values = [r["v"] for r in rows if r["v"] is not None]
    assert result["n"] == len(values)
    if values:
        assert result["s"] == pytest.approx(sum(values), rel=1e-6, abs=1e-6)
    else:
        assert result["s"] is None


# --------------------------------------------------------------------------- #
# Vectorized kernels vs naive reference (group-by / order-by / distinct)
# --------------------------------------------------------------------------- #

_string_values = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "", "zz"]))
_numeric_values = st.one_of(
    st.none(),
    st.just(float("nan")),
    st.sampled_from([-3.0, -0.0, 0.0, 1.0, 2.5]),
    finite_floats,
)


@st.composite
def _key_arrays(draw, max_rows=25, max_keys=3):
    """Aligned key arrays with NULLs, NaNs, empty and single-row tables."""
    n = draw(st.integers(min_value=0, max_value=max_rows))
    n_keys = draw(st.integers(min_value=1, max_value=max_keys))
    arrays = []
    for _ in range(n_keys):
        if draw(st.booleans()):
            values = draw(st.lists(_string_values, min_size=n, max_size=n))
            arrays.append(np.array(values, dtype=object))
        else:
            values = draw(st.lists(_numeric_values, min_size=n, max_size=n))
            arrays.append(
                np.array([np.nan if v is None else v for v in values], dtype=np.float64)
            )
    return n, arrays


@given(data=_key_arrays())
def test_groupby_kernel_matches_reference(data):
    """Factorize/lexsort grouping == naive dict-of-tuples grouping."""
    n, arrays = data
    vectorized = group_rows_vectorized(arrays, n)
    reference = group_rows_reference(arrays, n)
    assert len(vectorized) == len(reference)
    for fast, slow in zip(vectorized, reference):
        assert fast.tolist() == slow.tolist()


@given(data=_key_arrays(), flags=st.lists(st.booleans(), min_size=3, max_size=3))
def test_orderby_kernel_matches_reference(data, flags):
    """Code-based lexsort == repeated stable Python sorts, any ASC/DESC mix."""
    n, arrays = data
    descending = flags[: len(arrays)]
    fast = sort_indices_vectorized(arrays, descending, n)
    slow = sort_indices_reference(arrays, descending, n)
    assert fast.tolist() == slow.tolist()


@given(data=_key_arrays(max_keys=2))
def test_distinct_kernel_matches_reference(data):
    """Columnar DISTINCT == naive first-occurrence row scan."""
    n, arrays = data
    columns = {f"c{i}": list(arr) for i, arr in enumerate(arrays)}
    table = Table.from_columns(columns) if n else Table.empty(list(columns))
    assert table.distinct_indices().tolist() == distinct_indices_reference(table).tolist()


@settings(max_examples=25)
@given(rows=rows_strategy)
def test_grouped_aggregates_match_naive_python(rows):
    """Batched segment aggregation equals per-group Python aggregation."""
    db = Database()
    db.register_rows("t", rows, column_order=["v", "w", "g"])
    result = db.query_rows(
        "SELECT g, COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, "
        "MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS a FROM t GROUP BY g"
    )
    groups: dict[str, list[float]] = {}
    counts: dict[str, int] = {}
    for row in rows:
        counts[row["g"]] = counts.get(row["g"], 0) + 1
        if row["v"] is not None:
            groups.setdefault(row["g"], []).append(row["v"])
    assert [r["g"] for r in result] == sorted(counts)
    for r in result:
        present = groups.get(r["g"], [])
        assert r["n"] == counts[r["g"]]
        assert r["nv"] == len(present)
        if present:
            assert r["s"] == pytest.approx(sum(present), rel=1e-9, abs=1e-9)
            assert r["lo"] == pytest.approx(min(present))
            assert r["hi"] == pytest.approx(max(present))
            assert r["a"] == pytest.approx(sum(present) / len(present), rel=1e-9, abs=1e-9)
        else:
            assert r["s"] is None and r["lo"] is None and r["hi"] is None and r["a"] is None


@settings(max_examples=25)
@given(rows=rows_strategy, descending=st.booleans())
def test_order_by_nulls_deterministic(rows, descending):
    """NULL order keys sort last under ASC and first under DESC."""
    db = Database()
    db.register_rows("t", rows, column_order=["v", "w", "g"])
    direction = "DESC" if descending else "ASC"
    result = db.query_rows(f"SELECT v FROM t ORDER BY v {direction}")
    values = [r["v"] for r in result]
    n_null = sum(1 for v in values if v is None)
    nulls = values[:n_null] if descending else values[len(values) - n_null :]
    assert all(v is None for v in nulls)
    present = [v for v in values if v is not None]
    assert present == sorted(present, reverse=descending)


# --------------------------------------------------------------------------- #
# Expression translation
# --------------------------------------------------------------------------- #


@settings(max_examples=40)
@given(
    low=st.floats(min_value=-1000, max_value=1000, allow_nan=False),
    high=st.floats(min_value=-1000, max_value=1000, allow_nan=False),
    value=st.floats(min_value=-1000, max_value=1000, allow_nan=False),
)
def test_range_predicate_translation_agrees_with_evaluator(low, high, value):
    expr = "datum.x >= lo && datum.x <= hi"
    signals = {"lo": low, "hi": high}
    client = evaluate(expr, {"x": value}, signals)
    db = Database()
    db.register_rows("t", [{"x": value}])
    server = len(db.query_rows(f"SELECT * FROM t WHERE {to_sql(expr, signals)}")) == 1
    assert bool(client) == server


@given(st.sampled_from([
    "datum.a > 1 && datum.b < 2",
    "abs(datum.a) >= 5",
    "datum.a == null",
    "isValid(datum.a)",
    "datum.a > 0 ? 1 : 0",
]))
def test_translatable_expressions_report_translatable(expr):
    assert is_translatable(expr)


# --------------------------------------------------------------------------- #
# Binning
# --------------------------------------------------------------------------- #


@settings(max_examples=60)
@given(
    low=st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
    span=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    maxbins=st.integers(min_value=1, max_value=200),
)
def test_compute_bins_invariants(low, span, maxbins):
    high = low + span
    start, stop, step = compute_bins((low, high), maxbins)
    assert step > 0
    assert start <= low + 1e-9
    assert stop >= high - 1e-9
    # The nice step never produces more than ~maxbins buckets (plus rounding).
    assert (stop - start) / step <= maxbins + 2
    # The chosen step comes from the 1/2/2.5/5/10 ladder.
    mantissa = step / (10 ** math.floor(math.log10(step)))
    assert any(math.isclose(mantissa, m, rel_tol=1e-9) for m in (1.0, 2.0, 2.5, 5.0, 10.0))


# --------------------------------------------------------------------------- #
# Cache
# --------------------------------------------------------------------------- #


@settings(max_examples=40)
@given(
    queries=st.lists(st.sampled_from([f"q{i}" for i in range(8)]), min_size=1, max_size=60),
    capacity=st.integers(min_value=1, max_value=6),
)
def test_cache_never_exceeds_capacity_and_counts_consistently(queries, capacity):
    cache = QueryCache(max_entries=capacity)
    for query in queries:
        if cache.get(query) is None:
            cache.put(query, result=[], payload_bytes=10)
        assert len(cache) <= capacity
    stats = cache.stats
    assert stats.hits + stats.misses == len(queries)
    assert stats.insertions <= stats.misses
    assert stats.evictions <= stats.insertions


# --------------------------------------------------------------------------- #
# Plan enumeration and plan equivalence
# --------------------------------------------------------------------------- #


def _histogram_spec(maxbins_value: int = 8) -> dict:
    return {
        "signals": [{"name": "maxbins", "value": maxbins_value}],
        "data": [
            {"name": "source", "table": "t"},
            {
                "name": "binned",
                "source": "source",
                "transform": [
                    {"type": "filter", "expr": "datum.w >= 0"},
                    {"type": "extent", "field": "w", "signal": "w_extent"},
                    {
                        "type": "bin",
                        "field": "w",
                        "maxbins": {"signal": "maxbins"},
                        "extent": {"signal": "w_extent"},
                    },
                    {"type": "aggregate", "groupby": ["bin0"], "ops": ["count"], "as": ["n"]},
                ],
            },
        ],
        "marks": [{"type": "rect", "from": {"data": "binned"}}],
    }


@settings(max_examples=15)
@given(rows=rows_strategy, maxbins=st.integers(min_value=2, max_value=30))
def test_every_enumerated_plan_is_valid_and_equivalent(rows, maxbins):
    """All enumerated plans validate and produce identical renderer input."""
    spec = parse_spec_dict(_histogram_spec(maxbins))
    db = Database()
    db.register_rows("t", rows, column_order=["v", "w", "g"])
    middleware = MiddlewareServer(db)
    rewriter = SpecRewriter(spec, middleware)
    plans = PlanEnumerator(spec).enumerate()
    assert len(plans) == 5

    reference: set | None = None
    for plan in plans:
        rewriter.validate_assignment(plan.as_dict())  # must not raise
        built = rewriter.build(plan.as_dict())
        built.dataflow.run()
        binned = built.dataflow.dataset("binned")
        key = {
            (None if r["bin0"] is None else round(r["bin0"], 6), r["n"]) for r in binned
        }
        if reference is None:
            reference = key
        else:
            assert key == reference


@settings(max_examples=20)
@given(st.data())
def test_enumerator_child_splits_require_server_parent(data):
    """Random multi-entry pipelines never yield invalid parent/child splits."""
    n_children = data.draw(st.integers(min_value=1, max_value=3))
    spec_dict = {
        "data": [
            {"name": "source", "table": "t"},
            {
                "name": "filtered",
                "source": "source",
                "transform": [{"type": "filter", "expr": "datum.w > 0"}],
            },
        ],
        "marks": [],
    }
    for index in range(n_children):
        spec_dict["data"].append(
            {
                "name": f"agg{index}",
                "source": "filtered",
                "transform": [
                    {"type": "aggregate", "groupby": ["g"], "ops": ["count"], "as": ["n"]}
                ],
            }
        )
        spec_dict["marks"].append({"type": "rect", "from": {"data": f"agg{index}"}})
    spec = parse_spec_dict(spec_dict)
    plans = PlanEnumerator(spec).enumerate()
    for plan in plans:
        assignment = plan.as_dict()
        for index in range(n_children):
            if assignment[f"agg{index}"] > 0:
                assert assignment["filtered"] == 1
    # 1 (filtered client) + 2^children (filtered server, each child free).
    assert len(plans) == 1 + 2 ** n_children


# --------------------------------------------------------------------------- #
# Serialization estimates
# --------------------------------------------------------------------------- #


@settings(max_examples=30)
@given(n_rows=st.integers(min_value=0, max_value=500))
def test_arrow_payload_monotone_in_rows(n_rows):
    from repro.net.serialize import ArrowCodec

    rows = [{"a": float(i), "b": "x" * 5} for i in range(n_rows)]
    smaller = ArrowCodec().estimate(rows[: n_rows // 2])
    larger = ArrowCodec().estimate(rows)
    assert larger.payload_bytes >= smaller.payload_bytes
    assert larger.encode_seconds >= 0 and larger.decode_seconds >= 0
