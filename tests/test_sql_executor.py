"""End-to-end tests of the SQL engine (parser → planner → executor)."""

import pytest

from repro.errors import CatalogError, ExecutionError, PlanningError
from repro.sql import Database


@pytest.fixture()
def db(tiny_table_rows):
    database = Database()
    database.register_rows("tiny", tiny_table_rows)
    return database


def rows(db, sql):
    return db.execute(sql).to_rows()


# --------------------------------------------------------------------------- #
# Projection, filtering, expressions
# --------------------------------------------------------------------------- #


def test_select_star(db):
    assert len(rows(db, "SELECT * FROM tiny")) == 5


def test_select_columns_and_alias(db):
    result = rows(db, "SELECT category AS c, value FROM tiny")
    assert set(result[0]) == {"c", "value"}


def test_where_comparison_and_logic(db):
    result = rows(db, "SELECT value FROM tiny WHERE value > 10 AND value < 50")
    assert sorted(r["value"] for r in result) == [20, 30]


def test_where_nulls_are_excluded(db):
    result = rows(db, "SELECT value FROM tiny WHERE value > 0")
    assert len(result) == 4  # the NULL row never satisfies a comparison


def test_where_is_null(db):
    assert len(rows(db, "SELECT * FROM tiny WHERE value IS NULL")) == 1
    assert len(rows(db, "SELECT * FROM tiny WHERE value IS NOT NULL")) == 4


def test_where_in_list_and_string_equality(db):
    result = rows(db, "SELECT * FROM tiny WHERE category IN ('a', 'c')")
    assert len(result) == 3
    result = rows(db, "SELECT * FROM tiny WHERE category = 'b'")
    assert len(result) == 2


def test_where_between_and_not(db):
    assert len(rows(db, "SELECT * FROM tiny WHERE value BETWEEN 20 AND 30")) == 2
    assert len(rows(db, "SELECT * FROM tiny WHERE NOT value > 20")) == 2


def test_arithmetic_and_scalar_functions(db):
    result = rows(db, "SELECT value * 2 + 1 AS derived, FLOOR(value / 15) AS bucket FROM tiny WHERE value = 30")
    assert result[0]["derived"] == 61
    assert result[0]["bucket"] == 2


def test_case_expression(db):
    result = rows(
        db,
        "SELECT category, CASE WHEN value >= 30 THEN 'high' ELSE 'low' END AS level "
        "FROM tiny WHERE value IS NOT NULL ORDER BY value",
    )
    assert [r["level"] for r in result] == ["low", "low", "high", "high"]


def test_division_by_zero_yields_null(db):
    result = rows(db, "SELECT value / 0 AS broken FROM tiny WHERE value = 10")
    assert result[0]["broken"] is None


def test_string_functions_and_concat(db):
    result = rows(db, "SELECT UPPER(category) AS u, category || '!' AS c FROM tiny WHERE value = 10")
    assert result[0] == {"u": "A", "c": "a!"}


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #


def test_global_aggregates(db):
    result = rows(db, "SELECT COUNT(*) AS n, SUM(value) AS s, AVG(value) AS a, MIN(value) AS lo, MAX(value) AS hi FROM tiny")
    assert result == [{"n": 5, "s": 110, "a": 27.5, "lo": 10, "hi": 50}]


def test_count_column_skips_nulls(db):
    result = rows(db, "SELECT COUNT(value) AS n FROM tiny")
    assert result[0]["n"] == 4


def test_group_by_with_order(db):
    result = rows(db, "SELECT category, COUNT(*) AS n FROM tiny GROUP BY category ORDER BY category")
    assert result == [
        {"category": "a", "n": 2},
        {"category": "b", "n": 2},
        {"category": "c", "n": 1},
    ]


def test_group_by_expression_alias(db):
    result = rows(
        db,
        "SELECT FLOOR(weight / 2) AS bucket, COUNT(*) AS n FROM tiny GROUP BY bucket ORDER BY bucket",
    )
    assert [r["bucket"] for r in result] == [0, 1, 2]


def test_having_filters_groups(db):
    result = rows(
        db,
        "SELECT category, COUNT(*) AS n FROM tiny GROUP BY category HAVING COUNT(*) > 1 ORDER BY category",
    )
    assert [r["category"] for r in result] == ["a", "b"]


def test_aggregate_of_empty_input(db):
    result = rows(db, "SELECT COUNT(*) AS n, SUM(value) AS s FROM tiny WHERE value > 1000")
    assert result == [{"n": 0, "s": None}]


def test_count_distinct(db):
    result = rows(db, "SELECT COUNT(DISTINCT category) AS n FROM tiny")
    assert result[0]["n"] == 3


def test_median_and_stddev(db):
    result = rows(db, "SELECT MEDIAN(value) AS m, STDDEV(value) AS s FROM tiny")
    assert result[0]["m"] == 25
    assert result[0]["s"] == pytest.approx(17.078, abs=0.01)


def test_group_by_requires_grouped_items(db):
    with pytest.raises(PlanningError):
        db.execute("SELECT value, COUNT(*) FROM tiny GROUP BY category")


def test_aggregate_in_where_rejected(db):
    with pytest.raises(PlanningError):
        db.execute("SELECT category FROM tiny WHERE COUNT(*) > 1")


# --------------------------------------------------------------------------- #
# Sorting, limits, distinct, subqueries, windows
# --------------------------------------------------------------------------- #


def test_order_by_multiple_keys_and_nulls_last(db):
    result = rows(db, "SELECT category, value FROM tiny ORDER BY category, value DESC")
    assert result[0] == {"category": "a", "value": 20}
    # PostgreSQL semantics: DESC places NULLs first within the 'b' group.
    assert result[2]["value"] is None
    assert result[3]["value"] == 30


def test_limit_offset(db):
    result = rows(db, "SELECT value FROM tiny ORDER BY weight LIMIT 2 OFFSET 1")
    assert [r["value"] for r in result] == [20, 30]


def test_distinct(db):
    result = rows(db, "SELECT DISTINCT category FROM tiny")
    assert len(result) == 3


def test_subquery_in_from(db):
    result = rows(
        db,
        "SELECT category, COUNT(*) AS n FROM "
        "(SELECT * FROM tiny WHERE value > 10) AS sub GROUP BY category ORDER BY category",
    )
    assert result == [{"category": "a", "n": 1}, {"category": "b", "n": 1}, {"category": "c", "n": 1}]


def test_window_running_sum(db):
    result = rows(
        db,
        "SELECT category, weight, SUM(weight) OVER (PARTITION BY category ORDER BY weight) AS cumulative FROM tiny ORDER BY category, weight",
    )
    by_category = {}
    for row in result:
        by_category.setdefault(row["category"], []).append(row["cumulative"])
    assert by_category["a"] == [1, 3]
    assert by_category["b"] == [3, 7]


def test_window_row_number(db):
    result = rows(
        db,
        "SELECT category, ROW_NUMBER() OVER (PARTITION BY category ORDER BY weight) AS rn FROM tiny ORDER BY category, rn",
    )
    assert [r["rn"] for r in result if r["category"] == "a"] == [1, 2]


def test_window_without_order_is_partition_total(db):
    result = rows(
        db,
        "SELECT category, SUM(weight) OVER (PARTITION BY category) AS total FROM tiny ORDER BY category",
    )
    totals = {r["category"]: r["total"] for r in result}
    assert totals == {"a": 3, "b": 7, "c": 5}


# --------------------------------------------------------------------------- #
# Engine-level behaviour
# --------------------------------------------------------------------------- #


def test_unknown_table_and_column(db):
    with pytest.raises(CatalogError):
        db.execute("SELECT * FROM missing")
    with pytest.raises(ExecutionError):
        db.execute("SELECT missing_column FROM tiny")


def test_unknown_function(db):
    with pytest.raises(ExecutionError):
        db.execute("SELECT FROBNICATE(value) FROM tiny")


def test_explain_returns_plan_text(db):
    result = db.execute("EXPLAIN SELECT category, COUNT(*) FROM tiny GROUP BY category")
    text = "\n".join(str(r["plan"]) for r in result.to_rows())
    assert "Aggregate" in text and "Scan(tiny)" in text


def test_engine_metrics_accumulate(db):
    db.execute("SELECT * FROM tiny")
    db.execute("SELECT COUNT(*) FROM tiny")
    assert db.metrics.queries_executed >= 2
    assert db.metrics.total_rows_returned >= 6
    assert len(db.metrics.query_log) >= 2


def test_execution_stats_count_kernel_work(db):
    grouped = db.execute("SELECT category, COUNT(*) FROM tiny GROUP BY category")
    assert grouped.stats.rows_grouped == 5
    assert grouped.stats.groups_formed == 3
    ordered = db.execute("SELECT * FROM tiny ORDER BY value")
    assert ordered.stats.rows_sorted == 5
    deduped = db.execute("SELECT DISTINCT category FROM tiny")
    assert deduped.stats.rows_deduplicated == 5
    totals = db.metrics.snapshot()
    assert totals["groups_formed"] >= 3
    assert totals["rows_sorted"] >= 5
    assert totals["rows_deduplicated"] >= 5


def test_plan_cache_hits_on_whitespace_variants(db):
    baseline_misses = db.metrics.plan_cache_misses
    first = rows(db, "SELECT category, COUNT(*) AS n FROM tiny GROUP BY category")
    again = rows(db, "SELECT   category,\n  COUNT(*) AS n\nFROM tiny   GROUP BY category")
    assert again == first
    assert db.metrics.plan_cache_hits >= 1
    assert db.metrics.plan_cache_misses == baseline_misses + 1


def test_plan_cache_preserves_string_literal_whitespace():
    database = Database()
    database.register_rows("t", [{"s": "a b"}, {"s": "a  b"}])
    for quote in ("'", '"'):
        one = database.query_rows(f"SELECT * FROM t WHERE s = {quote}a b{quote}")
        two = database.query_rows(f"SELECT * FROM t WHERE s = {quote}a  b{quote}")
        assert one == [{"s": "a b"}]
        assert two == [{"s": "a  b"}]  # distinct cache keys, not a stale plan
    assert database.metrics.plan_cache_misses == 4
    assert database.metrics.plan_cache_hits == 0


def test_plan_cache_survives_table_replacement(db):
    sql = "SELECT COUNT(*) AS n FROM tiny"
    assert rows(db, sql) == [{"n": 5}]
    db.register_rows("tiny", [{"category": "x", "value": 1, "weight": 1}], replace=True)
    assert rows(db, sql) == [{"n": 1}]  # cached plan re-resolves the table
    assert db.metrics.plan_cache_hits >= 1


def test_apply_aggregate_segments_honours_gapped_segments():
    import numpy as np

    from repro.sql.functions import apply_aggregate_segments

    values = np.array([1.0, 2.0, 3.0])
    starts, ends = np.array([0, 2]), np.array([1, 3])
    # Non-contiguous segments must skip the reduceat fast path (which would
    # fold row 1 into the first group) and honour ends exactly.
    assert apply_aggregate_segments("SUM", values, starts, ends) == [1.0, 3.0]
    assert apply_aggregate_segments("COUNT", values, starts, ends) == [1.0, 1.0]


def test_order_by_string_nulls_deterministic():
    database = Database()
    database.register_rows(
        "t", [{"s": "b"}, {"s": None}, {"s": "a"}, {"s": None}, {"s": "c"}]
    )
    ascending = [r["s"] for r in database.query_rows("SELECT s FROM t ORDER BY s")]
    assert ascending == ["a", "b", "c", None, None]
    descending = [r["s"] for r in database.query_rows("SELECT s FROM t ORDER BY s DESC")]
    assert descending == [None, None, "c", "b", "a"]


def test_register_columns_and_drop(db):
    db.register_columns("extra", {"a": [1, 2, 3]})
    assert db.query_rows("SELECT COUNT(*) AS n FROM extra") == [{"n": 3}]
    db.drop_table("extra")
    assert "extra" not in db.table_names()


def test_explain_estimates_cardinality(flights_db):
    estimate = flights_db.explain("SELECT carrier, COUNT(*) FROM flights GROUP BY carrier")
    assert estimate.total_cost > 0
    assert 0 < estimate.estimated_rows <= 500


def test_group_scalar_tail_vectorized_matches_naive_reference():
    """Pin the fancy-indexed per-group scalar tail against naive Python.

    A non-aggregate scalar expression inside GROUP BY takes each group's
    first row via one ``order[starts]`` take; this must agree with a
    per-group loop for many groups, NULL keys, string keys, and the
    empty-input global-aggregate case (empty segment -> NULL).
    """
    import random

    rng = random.Random(7)
    rows = [
        {
            "g": rng.choice([None, *(f"k{i}" for i in range(50))]),
            "v": rng.choice([None, -1.5, 0.0, 2.0, 7.25]),
        }
        for _ in range(400)
    ]
    database = Database()
    database.register_rows("t", rows, column_order=["g", "v"])
    result = database.query_rows(
        "SELECT g, g AS key_again, v + 0 AS shifted, COUNT(*) AS n "
        "FROM t GROUP BY g, v + 0 ORDER BY g, shifted"
    )
    naive: dict[tuple, int] = {}
    for row in rows:
        naive[(row["g"], row["v"])] = naive.get((row["g"], row["v"]), 0) + 1
    assert len(result) == len(naive)
    for out in result:
        assert out["key_again"] == out["g"]
        assert out["n"] == naive[(out["g"], out["shifted"])]

    # Empty input: zero groups must come out as zero rows, and the
    # no-GROUP-BY global aggregate yields its one NULL-filled segment.
    database.register_columns("e", {"g": [], "v": []})
    assert database.query_rows("SELECT g, v + 0 AS s FROM e GROUP BY g, v + 0") == []
    assert database.query_rows("SELECT MAX(v) AS m, COUNT(*) AS n FROM e") == [
        {"m": None, "n": 0}
    ]
