"""Backend-differential tests: every backend must return identical results.

The shared query corpus below runs through the :class:`EmbeddedBackend`
and the :class:`SqliteBackend` and asserts row-identical results:

* **values** — numeric results agree to float tolerance (the two engines
  accumulate in different orders), everything else exactly,
* **order** — compared positionally when the query has an ORDER BY
  (including NULL placement: last under ASC, first under DESC); as
  multisets otherwise (SQL leaves the order unspecified and the two
  engines genuinely differ, e.g. GROUP BY output order),
* **NULL placement** — NULL/NaN round-trips as ``None`` everywhere.

Queries with dialect differences (NULLS clauses, window frames) are
generated through the production SQL builders (:class:`QueryFragment`
with the target backend's capabilities) so the corpus exercises exactly
the SQL the rewrite layer would send to each backend.

A hypothesis section re-runs core query shapes over randomized tables
with NULLs, duplicates and empty inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import (
    EmbeddedBackend,
    SqliteBackend,
    as_backend,
    backend_names,
    create_backend,
)
from repro.backends.base import BackendCapabilities
from repro.bench.scale import row_sort_key, values_equal
from repro.datasets import generate_dataset
from repro.rewrite.templates import QueryFragment, apply_transform
from repro.sql import Database

settings.register_profile(
    "repro-diff", deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=15
)
settings.load_profile("repro-diff")


# --------------------------------------------------------------------------- #
# Shared data
# --------------------------------------------------------------------------- #


def _mixed_rows(n: int = 120, seed: int = 11) -> list[dict[str, object]]:
    """Rows with NULLs in both a numeric and a string column.

    ``w`` is unique (a shuffled permutation scaled to floats) so ORDER BY
    ``w`` induces a total order — the engines do not promise a stable
    sort, so ordered corpus entries must be fully determined.
    """
    rng = np.random.default_rng(seed)
    w_values = rng.permutation(n) * 1.75
    rows: list[dict[str, object]] = []
    for i in range(n):
        v = None if rng.random() < 0.15 else float(np.round(rng.normal(50, 20), 3))
        g = None if rng.random() < 0.1 else str(rng.choice(["a", "b", "c", "d"]))
        rows.append({"g": g, "v": v, "w": float(w_values[i]), "b": float(i % 2)})
    return rows


@pytest.fixture(scope="module")
def backends() -> dict[str, object]:
    """Both backends with the same two tables registered."""
    mixed = _mixed_rows()
    flights = generate_dataset("flights", 300, seed=5)
    built = {}
    for name in backend_names():
        backend = create_backend(name)
        backend.register_rows("data", mixed, column_order=["g", "v", "w", "b"])
        backend.register_rows("flights", flights)
        built[name] = backend
    return built


# --------------------------------------------------------------------------- #
# Comparison helpers
# --------------------------------------------------------------------------- #


# The row-identity contract (float tolerance + canonical multiset key)
# lives in one place — repro.bench.scale — so the bench correctness gate
# and this suite can never drift apart.
_values_equal = values_equal
_row_key = row_sort_key


def assert_identical_results(
    sql_by_backend: dict[str, str],
    backends: dict[str, object],
    ordered: bool,
) -> None:
    """Run each backend's SQL and assert the results are identical."""
    results = {}
    for name, backend in backends.items():
        results[name] = backend.query_rows(sql_by_backend[name])
    names = sorted(results)
    reference_name, others = names[0], names[1:]
    reference = results[reference_name]
    for other_name in others:
        other = results[other_name]
        label = f"{reference_name} vs {other_name}"
        assert len(reference) == len(other), (
            f"{label}: row counts differ ({len(reference)} vs {len(other)}) "
            f"for {sql_by_backend[reference_name]!r}"
        )
        if reference:
            assert list(reference[0]) == list(other[0]), (
                f"{label}: column names differ for {sql_by_backend[reference_name]!r}"
            )
        left, right = reference, other
        if not ordered:
            left = sorted(left, key=_row_key)
            right = sorted(right, key=_row_key)
        for index, (row_a, row_b) in enumerate(zip(left, right)):
            for column in row_a:
                assert _values_equal(row_a[column], row_b[column]), (
                    f"{label}: row {index} column {column!r}: "
                    f"{row_a[column]!r} != {row_b[column]!r} "
                    f"for {sql_by_backend[reference_name]!r}"
                )


def _plain(sql: str):
    """A corpus query whose text is identical across dialects."""
    return lambda capabilities: sql


def _ordered(base: str, keys: list[tuple[str, bool]]):
    """A corpus query with dialect-aware NULL placement on its sort keys."""

    def build(capabilities: BackendCapabilities) -> str:
        rendered = ", ".join(
            f"{key} {'DESC' if descending else 'ASC'}"
            + capabilities.order_nulls_suffix(descending)
            for key, descending in keys
        )
        return f"{base} ORDER BY {rendered}"

    return build


def _stack(capabilities: BackendCapabilities) -> str:
    """The stack transform's window query via the production builder."""
    fragment = QueryFragment.for_table("data", dialect=capabilities)
    fragment = apply_transform(
        fragment,
        {"type": "stack"},
        {"field": "w", "groupby": ["g"], "sort": {"field": "w"}, "as": ["y0", "y1"]},
    )
    return fragment.to_sql()


# --------------------------------------------------------------------------- #
# The shared corpus
# --------------------------------------------------------------------------- #

#: (identifier, dialect-aware SQL builder, results are position-compared).
CORPUS: list[tuple[str, object, bool]] = [
    ("scan", _plain("SELECT * FROM data"), False),
    ("filter_numeric", _plain("SELECT g, v FROM data WHERE v > 40 AND v <= 80"), False),
    ("filter_string", _plain("SELECT g, w FROM data WHERE g = 'a' OR g = 'b'"), False),
    ("filter_null", _plain("SELECT w FROM data WHERE v IS NULL"), False),
    ("filter_not_null", _plain("SELECT w FROM data WHERE v IS NOT NULL AND g IS NOT NULL"), False),
    ("filter_in_between", _plain(
        "SELECT w FROM data WHERE g IN ('a', 'c') AND v BETWEEN 30 AND 70"), False),
    ("projection_arithmetic", _plain(
        "SELECT v + w AS total, v * 2 AS doubled, -v AS negated, w - v AS gap FROM data"), False),
    ("case_when", _plain(
        "SELECT CASE WHEN v IS NULL THEN 'missing' WHEN v > 50 THEN 'high' "
        "ELSE 'low' END AS band, w FROM data"), False),
    ("scalar_functions", _plain(
        "SELECT ABS(v - 50) AS a, FLOOR(w / 10) AS f, SQRT(w) AS s, "
        "COALESCE(v, -1) AS c FROM data"), False),
    ("string_functions", _plain(
        "SELECT UPPER(g) AS u, LOWER(g) AS l, LENGTH(g) AS n, g || '_x' AS tagged FROM data"),
     False),
    ("group_by_aggregates", _plain(
        "SELECT g, COUNT(*) AS n, COUNT(v) AS n_v, SUM(v) AS s, AVG(v) AS a, "
        "MIN(v) AS lo, MAX(v) AS hi FROM data GROUP BY g"), False),
    ("group_by_two_keys", _plain(
        "SELECT g, b, COUNT(*) AS n, SUM(w) AS s FROM data GROUP BY g, b"), False),
    ("having", _plain(
        "SELECT g, COUNT(*) AS n FROM data GROUP BY g HAVING COUNT(*) > 5"), False),
    ("count_distinct", _plain("SELECT COUNT(DISTINCT g) AS n FROM data"), False),
    ("distinct", _plain("SELECT DISTINCT g, b FROM data"), False),
    ("statistics_aggregates", _plain(
        "SELECT MEDIAN(v) AS med, STDDEV(v) AS sd, VARIANCE(v) AS var FROM data"), False),
    ("extent", _plain("SELECT MIN(v) AS min_val, MAX(v) AS max_val FROM data"), False),
    ("bin_shape", _plain(
        "SELECT CASE WHEN w >= 200 THEN 180 WHEN w < 0 THEN 0 "
        "ELSE FLOOR((w - 0) / 20.0) * 20.0 + 0 END AS bin0, COUNT(*) AS count "
        "FROM data GROUP BY bin0"), False),
    ("timeunit_shape", _plain(
        "SELECT FLOOR(w / 60.0) * 60.0 AS unit0, FLOOR(w / 60.0) * 60.0 + 60.0 AS unit1 "
        "FROM data"), False),
    ("subquery_over_aggregate", _plain(
        "SELECT g, n FROM (SELECT g, COUNT(*) AS n FROM data GROUP BY g) AS sub "
        "WHERE n > 3"), False),
    ("empty_result", _plain("SELECT * FROM data WHERE v > 1e9"), False),
    ("aggregate_of_empty", _plain(
        "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a FROM data WHERE v > 1e9"), False),
    # Ordered entries: position-compared, including NULL placement.
    ("order_asc_nulls", _ordered("SELECT v FROM data", [("v", False)]), True),
    ("order_desc_nulls", _ordered("SELECT v FROM data", [("v", True)]), True),
    ("order_string_nulls", _ordered("SELECT g FROM data", [("g", False)]), True),
    ("order_multi_key", _ordered(
        "SELECT g, v, w FROM data", [("g", False), ("v", True), ("w", False)]), True),
    ("order_limit", _ordered("SELECT w, g FROM data", [("w", True)]), True),
    ("order_group_rollup", _ordered(
        "SELECT g, COUNT(*) AS n FROM (SELECT * FROM data) AS sub GROUP BY g",
        [("n", True), ("g", False)]), True),
    ("flights_rollup", _ordered(
        "SELECT carrier, COUNT(*) AS n, AVG(delay) AS avg_delay, SUM(distance) AS total "
        "FROM flights GROUP BY carrier", [("n", True), ("carrier", False)]), True),
    # Window query through the production stack builder (ROWS frame shim).
    ("stack_window", _stack, False),
]


@pytest.mark.parametrize(
    ("name", "builder", "is_ordered"), CORPUS, ids=[c[0] for c in CORPUS]
)
def test_corpus_query_identical_across_backends(backends, name, builder, is_ordered):
    sql_by_backend = {
        backend_name: builder(backend.capabilities)
        for backend_name, backend in backends.items()
    }
    assert_identical_results(sql_by_backend, backends, ordered=is_ordered)


def test_order_limit_respects_limit(backends):
    """LIMIT composes with dialect-aware ORDER BY on every backend."""
    for backend in backends.values():
        suffix = backend.capabilities.order_nulls_suffix(descending=True)
        rows = backend.query_rows(f"SELECT w FROM data ORDER BY w DESC{suffix} LIMIT 5")
        values = [r["w"] for r in rows]
        assert len(values) == 5
        assert values == sorted(values, reverse=True)


# --------------------------------------------------------------------------- #
# Property-based differential testing
# --------------------------------------------------------------------------- #

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)

row_strategy = st.fixed_dictionaries(
    {
        "v": st.one_of(st.none(), finite_floats),
        "w": finite_floats,
        "g": st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
    }
)

rows_strategy = st.lists(row_strategy, min_size=0, max_size=30)

#: Query shapes the property test replays on random tables (all are
#: dialect-identical or fully determined, so no builder is needed).
PROPERTY_QUERIES = (
    "SELECT * FROM t WHERE v > 0",
    "SELECT g, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY g",
    "SELECT COUNT(DISTINCT g) AS n, COUNT(v) AS nv FROM t",
    "SELECT MIN(v) AS min_val, MAX(v) AS max_val FROM t",
    "SELECT CASE WHEN v IS NULL THEN 0 ELSE 1 END AS has_v, COUNT(*) AS n "
    "FROM t GROUP BY has_v",
)


@given(rows=rows_strategy)
def test_random_tables_identical_across_backends(rows):
    backends = {}
    for name in backend_names():
        backend = create_backend(name)
        backend.register_rows("t", rows, column_order=["v", "w", "g"])
        backends[name] = backend
    for sql in PROPERTY_QUERIES:
        assert_identical_results(dict.fromkeys(backends, sql), backends, ordered=False)
    for backend in backends.values():
        backend.close()


@given(rows=st.lists(row_strategy, min_size=1, max_size=25), descending=st.booleans())
def test_random_order_by_null_placement(rows, descending):
    """ORDER BY v agrees positionally: NULL last ASC / first DESC."""
    backends = {}
    for name in backend_names():
        backend = create_backend(name)
        backend.register_rows("t", rows, column_order=["v", "w", "g"])
        backends[name] = backend
    direction = "DESC" if descending else "ASC"
    sql_by_backend = {
        name: (
            f"SELECT v FROM t ORDER BY v {direction}"
            + backend.capabilities.order_nulls_suffix(descending)
        )
        for name, backend in backends.items()
    }
    assert_identical_results(sql_by_backend, backends, ordered=True)
    for backend in backends.values():
        backend.close()


# --------------------------------------------------------------------------- #
# Backend protocol behaviour
# --------------------------------------------------------------------------- #


def test_as_backend_adapts_database_and_passes_backends_through():
    database = Database()
    adapted = as_backend(database)
    assert isinstance(adapted, EmbeddedBackend)
    assert adapted.database is database
    backend = SqliteBackend()
    assert as_backend(backend) is backend
    with pytest.raises(TypeError):
        as_backend(object())


def test_create_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown backend"):
        create_backend("duckdb")


def test_capabilities_drive_dialect_clauses():
    embedded = create_backend("embedded").capabilities
    sqlite = create_backend("sqlite").capabilities
    assert embedded.order_nulls_suffix(descending=False) == ""
    assert sqlite.order_nulls_suffix(descending=False) == " NULLS LAST"
    assert sqlite.order_nulls_suffix(descending=True) == " NULLS FIRST"
    assert embedded.window_frame_clause() == ""
    assert sqlite.window_frame_clause() == " ROWS UNBOUNDED PRECEDING"
    assert embedded.supports_aggregate("median")
    assert sqlite.supports_aggregate("STDDEV")


def test_backend_metrics_and_table_management():
    for name in backend_names():
        backend = create_backend(name)
        backend.register_rows("t", [{"x": 1.0}, {"x": 2.0}])
        assert backend.table_names() == ["t"]
        assert backend.table("t").num_rows == 2
        assert backend.table_statistics("t").num_rows == 2
        backend.query_rows("SELECT COUNT(*) AS n FROM t")
        snapshot = backend.stats()
        assert snapshot["queries_executed"] == 1.0
        assert snapshot["rows_returned"] == 1.0
        backend.drop_table("t")
        assert backend.table_names() == []
        backend.close()


def test_sqlite_registration_survives_replace_and_requery():
    backend = SqliteBackend()
    backend.register_rows("t", [{"x": 1.0}])
    backend.register_rows("t", [{"x": 5.0}, {"x": 6.0}], replace=True)
    assert backend.query_rows("SELECT COUNT(*) AS n FROM t") == [{"n": 2}]
    assert backend.table_statistics("t").num_rows == 2


def test_sqlite_explain_matches_embedded_convention():
    backend = SqliteBackend()
    backend.register_rows("t", [{"x": float(i)} for i in range(10)])
    estimate = backend.explain("SELECT x, COUNT(*) FROM t GROUP BY x")
    assert estimate.estimated_rows >= 1
    rows = backend.query_rows("EXPLAIN SELECT x FROM t")
    assert rows and "plan" in rows[0]
