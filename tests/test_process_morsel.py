"""Process-pool morsel execution: differential, shm lifecycle, crash safety.

The shared-memory process executor (``Database(executor="process")``)
must be invisible in results: the full 29-query backend corpus and the
hypothesis-generated partitioned harness run against a serial thread
engine, row for row.  Beyond correctness, the lifecycle contracts are
pinned here: segments are unlinked on drop/replace/close (never leaked
past the session — see the autouse guard in ``conftest.py``), the engine
falls back to threads when shared memory is unavailable or tables sit
under the size floor, and a worker process dying mid-task surfaces a
clean :class:`~repro.errors.ExecutionError` instead of a hang.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_backends_differential import (
    CORPUS,
    _mixed_rows,
    assert_identical_results,
)
from test_partitioned_differential import PARTITION_QUERIES, row_strategy

from repro.backends import EmbeddedBackend
from repro.datasets import generate_dataset
from repro.errors import ExecutionError
from repro.sql import Database
from repro.sql.morsel import MorselPool, ProcessMorselPool
from repro.storage import shared as shared_mod
from repro.storage.shared import (
    SharedTableHandle,
    StaleSegmentError,
    active_segment_names,
    attach_table,
    detach_all,
    shared_memory_available,
)
from repro.storage.table import PartitionedTable, Table

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)


def _process_database(**kwargs) -> Database:
    """An engine forced onto the process executor (no size floor)."""
    kwargs.setdefault("parallelism", 2)
    return Database(executor="process", process_min_rows=0, **kwargs)


# --------------------------------------------------------------------------- #
# Differential: full corpus + hypothesis harness under the process pool
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def engines():
    """The corpus tables on a serial thread engine vs a process engine."""
    serial = EmbeddedBackend(Database(parallelism=1))
    process = EmbeddedBackend(_process_database())
    for name, (rows, column_order) in {
        "data": (_mixed_rows(), ["g", "v", "w", "b"]),
        "flights": (generate_dataset("flights", 300, seed=5), None),
    }.items():
        serial.register_rows(name, rows, column_order=column_order)
        process.register_rows(name, rows, column_order=column_order)
        process.repartition(name, 40)
    pair = {"serial": serial, "process": process}
    yield pair
    for engine in pair.values():
        engine.close()


@needs_shm
@pytest.mark.parametrize(
    ("name", "builder", "is_ordered"), CORPUS, ids=[c[0] for c in CORPUS]
)
def test_corpus_query_identical_process(engines, name, builder, is_ordered):
    sql_by_engine = {
        engine_name: builder(engine.capabilities)
        for engine_name, engine in engines.items()
    }
    assert_identical_results(sql_by_engine, engines, ordered=is_ordered)


@needs_shm
def test_process_engine_actually_dispatches(engines):
    """The differential is only meaningful if morsels cross processes."""
    process = engines["process"]
    assert process.morsel_executor == "process"
    process.metrics.reset()
    process.query_rows("SELECT g, COUNT(*) AS n FROM data GROUP BY g")
    snapshot = process.stats()
    assert snapshot["morsel_tasks_dispatched"] > 0
    assert snapshot["morsel_bytes_shared"] > 0
    utilization = process.morsel_utilization()
    assert utilization is not None and utilization["tasks"] > 0


@pytest.fixture(scope="module")
def hypothesis_engines():
    """One engine pair reused across hypothesis examples (pool stays warm)."""
    serial = EmbeddedBackend(Database(parallelism=1))
    process = EmbeddedBackend(_process_database())
    pair = {"serial": serial, "process": process}
    yield pair
    for engine in pair.values():
        engine.close()


@needs_shm
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rows=st.lists(row_strategy, min_size=2, max_size=40),
    target_rows=st.integers(min_value=1, max_value=12),
)
def test_random_tables_identical_process(hypothesis_engines, rows, target_rows):
    for engine in hypothesis_engines.values():
        engine.register_rows("t", rows, replace=True, column_order=["v", "w", "g"])
    hypothesis_engines["process"].repartition("t", target_rows)
    for sql in PARTITION_QUERIES:
        assert_identical_results(
            dict.fromkeys(hypothesis_engines, sql), hypothesis_engines, ordered=False
        )


# --------------------------------------------------------------------------- #
# Shared-memory lifecycle
# --------------------------------------------------------------------------- #


def _partitioned_rows(n: int = 200) -> list[dict]:
    return [{"k": float(i % 5), "v": float(i), "s": f"g{i % 3}"} for i in range(n)]


@needs_shm
def test_segment_unlinked_on_drop():
    # Relative to a baseline: module-scoped engines from other tests may
    # legitimately hold their own live segments while this runs.
    baseline = active_segment_names()
    db = _process_database()
    try:
        db.register_rows("t", _partitioned_rows())
        db.repartition("t", 50)
        db.query_rows("SELECT k, SUM(v) AS s FROM t GROUP BY k")
        assert len(active_segment_names() - baseline) == 1
        db.drop_table("t")
        assert active_segment_names() - baseline == set()
    finally:
        db.close()


@needs_shm
def test_segment_replaced_on_reregister():
    baseline = active_segment_names()
    db = _process_database()
    try:
        db.register_rows("t", _partitioned_rows())
        db.repartition("t", 50)
        db.query_rows("SELECT COUNT(*) AS n FROM t")
        (old_name,) = active_segment_names() - baseline
        db.register_rows("t", _partitioned_rows(100), replace=True)
        # Old segment gone; none rebuilt until the table is partitioned again.
        assert active_segment_names() - baseline == set()
        db.repartition("t", 25)
        rows = db.query_rows("SELECT COUNT(*) AS n FROM t")
        assert rows == [{"n": 100}]
        live = active_segment_names() - baseline
        assert old_name not in live and len(live) == 1
    finally:
        db.close()


@needs_shm
def test_segments_released_on_close():
    baseline = active_segment_names()
    db = _process_database()
    db.register_rows("t", _partitioned_rows())
    db.repartition("t", 50)
    db.query_rows("SELECT MIN(v) AS lo FROM t")
    assert active_segment_names() - baseline
    db.close()
    assert active_segment_names() - baseline == set()


@needs_shm
def test_shared_handle_round_trip():
    """Export → attach rebuilds the identical table, zero-copy and read-only."""
    table = PartitionedTable.from_table(
        Table.from_rows(_partitioned_rows(40), name="t"), target_rows=10
    )
    handle = SharedTableHandle(table)
    try:
        rebuilt = attach_table(handle.descriptor)
        assert rebuilt.to_rows() == table.to_rows()
        assert rebuilt.partition_bounds() == table.partition_bounds()
        assert not rebuilt.column("v").values.flags.writeable
    finally:
        del rebuilt  # release the views so the detach can close the mmap
        detach_all()
        handle.close()


@needs_shm
def test_stale_segment_attach_fails_fast():
    table = PartitionedTable.from_table(
        Table.from_rows(_partitioned_rows(20), name="t"), target_rows=10
    )
    handle = SharedTableHandle(table)
    handle.close()  # unlink before any attach
    with pytest.raises(StaleSegmentError):
        attach_table(handle.descriptor)


def test_fallback_when_shared_memory_unavailable(monkeypatch):
    """No shm on the platform → the engine silently resolves to threads."""
    monkeypatch.setattr(shared_mod, "_shm_module", None)
    assert not shared_memory_available()
    db = Database(executor="process", process_min_rows=0)
    try:
        assert db.morsel_executor == "thread"
        assert db.process_pool is None
        db.register_rows("t", _partitioned_rows())
        db.repartition("t", 50)
        assert db.query_rows("SELECT COUNT(*) AS n FROM t") == [{"n": 200}]
        assert db.catalog.shared_handle("t") is None
    finally:
        db.close()


@needs_shm
def test_small_tables_stay_on_threads():
    """Below the size floor the process engine never exports a segment."""
    baseline = active_segment_names()
    # An explicit floor: the suite may run with REPRO_MORSEL_PROCESS_MIN_ROWS=0
    # (the CI process-differential leg), which overrides the 32768 default.
    db = Database(executor="process", process_min_rows=50_000)
    try:
        db.register_rows("t", _partitioned_rows())
        db.repartition("t", 50)
        db.query_rows("SELECT k, SUM(v) AS s FROM t GROUP BY k")
        assert active_segment_names() - baseline == set()
        assert db.metrics.snapshot()["morsel_bytes_shared"] == 0.0
    finally:
        db.close()


def test_env_default_executor(monkeypatch):
    monkeypatch.setenv("REPRO_MORSEL_EXECUTOR", "process")
    db = Database()
    try:
        expected = "process" if shared_memory_available() else "thread"
        assert db.morsel_executor == expected
    finally:
        db.close()
    monkeypatch.setenv("REPRO_MORSEL_EXECUTOR", "sidecar")
    with pytest.raises(ValueError):
        Database()


# --------------------------------------------------------------------------- #
# Pool lifecycle: crash surfacing, shutdown/map races
# --------------------------------------------------------------------------- #


def _crash_worker(_item: object) -> None:
    os._exit(13)  # simulate a hard worker death (OOM kill, segfault)


def _double(item: int) -> int:
    return item * 2


@needs_shm
def test_worker_crash_surfaces_clean_error():
    pool = ProcessMorselPool(workers=2)
    try:
        with pytest.raises(ExecutionError, match="worker process died"):
            pool.map(_crash_worker, [1, 2, 3])
        # The broken executor was discarded: the next map gets fresh workers.
        assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
    finally:
        pool.shutdown()


def test_thread_pool_map_survives_shutdown_race():
    pool = MorselPool(workers=4)
    executor = pool._ensure_executor()
    executor.shutdown(wait=True)  # simulate losing the race mid-map
    assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
    pool.shutdown()


@needs_shm
def test_process_pool_map_survives_shutdown_race():
    pool = ProcessMorselPool(workers=2)
    executor = pool._ensure_executor()
    executor.shutdown(wait=True)
    assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
    pool.shutdown()


def test_close_is_idempotent_and_shutdown_pools_restart():
    db = _process_database()
    db.register_rows("t", _partitioned_rows())
    db.repartition("t", 50)
    assert db.query_rows("SELECT COUNT(*) AS n FROM t") == [{"n": 200}]
    db.close()
    db.close()  # second close must be a no-op
    # Pools restart lazily: the engine still answers queries after close.
    assert db.query_rows("SELECT COUNT(*) AS n FROM t") == [{"n": 200}]
    db.close()
