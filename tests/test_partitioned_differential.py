"""Partitioned-parallel vs serial differential over the backend corpus.

Runs every query of the 29-query backend corpus (plus its hypothesis
shapes) on two embedded engines holding identical data — one flat with a
serial executor, one partitioned with morsel workers — and asserts
row-identical results through the same comparison contract the
cross-backend suite enforces (values, ordering, NULL placement).

This is the correctness gate of the partitioned execution refactor: the
pruning pass and every merge step (concat, partial-aggregate combine,
per-partition DISTINCT, post-merge sort) must be invisible in results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from test_backends_differential import (
    CORPUS,
    _mixed_rows,
    assert_identical_results,
)

from repro.backends import EmbeddedBackend
from repro.datasets import generate_dataset
from repro.sql import Database


def _engine_pair(
    tables: dict[str, tuple[list[dict], list[str] | None]],
    target_rows: int,
    parallelism: int = 4,
) -> dict[str, EmbeddedBackend]:
    """A flat-serial and a partitioned-parallel engine with the same data."""
    serial = EmbeddedBackend(Database(parallelism=1))
    partitioned = EmbeddedBackend(Database(parallelism=parallelism))
    for name, (rows, column_order) in tables.items():
        serial.register_rows(name, rows, column_order=column_order)
        partitioned.register_rows(name, rows, column_order=column_order)
        partitioned.repartition(name, target_rows)
    return {"serial": serial, "partitioned": partitioned}


@pytest.fixture(scope="module")
def engines():
    """The corpus tables, flat-serial vs partitioned-parallel."""
    pair = _engine_pair(
        {
            "data": (_mixed_rows(), ["g", "v", "w", "b"]),
            "flights": (generate_dataset("flights", 300, seed=5), None),
        },
        target_rows=40,
    )
    yield pair
    for engine in pair.values():
        engine.close()


@pytest.mark.parametrize(
    ("name", "builder", "is_ordered"), CORPUS, ids=[c[0] for c in CORPUS]
)
def test_corpus_query_identical_partitioned(engines, name, builder, is_ordered):
    sql_by_engine = {
        engine_name: builder(engine.capabilities)
        for engine_name, engine in engines.items()
    }
    assert_identical_results(sql_by_engine, engines, ordered=is_ordered)


def test_partitioned_engine_actually_partitions(engines):
    """The differential is only meaningful if morsels actually run."""
    engines["partitioned"].metrics.reset()
    engines["partitioned"].query_rows("SELECT g, COUNT(*) AS n FROM data GROUP BY g")
    snapshot = engines["partitioned"].stats()
    assert snapshot["partitions_scanned"] > 0
    assert snapshot["morsel_tasks"] > 0


# --------------------------------------------------------------------------- #
# Property-based: random tables, random partition sizes
# --------------------------------------------------------------------------- #

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)

row_strategy = st.fixed_dictionaries(
    {
        "v": st.one_of(st.none(), finite_floats),
        "w": finite_floats,
        "g": st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
    }
)

#: Queries stressing every merge step: filter chains, decomposable and
#: non-decomposable aggregates, DISTINCT, ORDER BY + LIMIT.
PARTITION_QUERIES = (
    "SELECT * FROM t WHERE v > 0 AND w < 100",
    "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi "
    "FROM t GROUP BY g",
    "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE v > 10",
    "SELECT MEDIAN(v) AS med, COUNT(DISTINCT g) AS ng FROM t",
    "SELECT DISTINCT g FROM t",
    "SELECT g, v FROM t WHERE v BETWEEN -100 AND 100 ORDER BY v DESC, g ASC LIMIT 7",
    "SELECT g, SUM(v) + COUNT(*) AS combo FROM t GROUP BY g",
)


@given(
    rows=st.lists(row_strategy, min_size=0, max_size=40),
    target_rows=st.integers(min_value=1, max_value=12),
)
def test_random_tables_identical_partitioned(rows, target_rows):
    engines = _engine_pair({"t": (rows, ["v", "w", "g"])}, target_rows=target_rows)
    try:
        for sql in PARTITION_QUERIES:
            assert_identical_results(dict.fromkeys(engines, sql), engines, ordered=False)
    finally:
        for engine in engines.values():
            engine.close()


@given(rows=st.lists(row_strategy, min_size=1, max_size=30), descending=st.booleans())
def test_random_order_by_identical_partitioned(rows, descending):
    """Positional comparison: the merge must preserve stable sort order."""
    engines = _engine_pair({"t": (rows, ["v", "w", "g"])}, target_rows=5)
    try:
        direction = "DESC" if descending else "ASC"
        sql = f"SELECT v, g FROM t WHERE w >= -1e6 ORDER BY v {direction}"
        assert_identical_results(dict.fromkeys(engines, sql), engines, ordered=True)
    finally:
        for engine in engines.values():
            engine.close()


def test_partition_boundary_rows_not_lost():
    """Boundary values landing exactly on partition edges stay visible."""
    rows = [{"t": float(i), "v": float(i)} for i in range(100)]
    engines = _engine_pair({"t": (rows, ["t", "v"])}, target_rows=10)
    try:
        for bound in (9.0, 10.0, 50.0, 99.0):
            sql = f"SELECT COUNT(*) AS n FROM t WHERE t >= {bound}"
            assert_identical_results(dict.fromkeys(engines, sql), engines, ordered=True)
        deltas = engines["partitioned"].query_rows(
            "SELECT COUNT(*) AS n FROM t WHERE t = 10"
        )
        assert deltas == [{"n": 1}]
    finally:
        for engine in engines.values():
            engine.close()


def test_float_merge_tolerance_is_tight():
    """Partial-sum merges agree with serial sums to float tolerance."""
    rng = np.random.default_rng(11)
    rows = [{"g": "ab"[i % 2], "v": float(rng.normal(0, 1e6))} for i in range(5000)]
    engines = _engine_pair({"t": (rows, ["g", "v"])}, target_rows=500)
    try:
        serial = engines["serial"].query_rows("SELECT g, SUM(v) AS s, AVG(v) AS a FROM t GROUP BY g")
        partitioned = engines["partitioned"].query_rows(
            "SELECT g, SUM(v) AS s, AVG(v) AS a FROM t GROUP BY g"
        )
        for row_a, row_b in zip(serial, partitioned):
            assert row_a["g"] == row_b["g"]
            assert np.isclose(row_a["s"], row_b["s"], rtol=1e-9)
            assert np.isclose(row_a["a"], row_b["a"], rtol=1e-9)
    finally:
        for engine in engines.values():
            engine.close()
