"""Tests for the Vega specification layer and client runtime."""

import pytest

from repro.errors import SpecError
from repro.vega import VegaRuntime, compile_spec, parse_spec_dict


# --------------------------------------------------------------------------- #
# Spec parsing and validation
# --------------------------------------------------------------------------- #


def test_parse_spec_basic_structure(histogram_spec):
    spec = parse_spec_dict(histogram_spec)
    assert spec.data_names() == ["source", "binned"]
    assert spec.signal_names() == ["maxbins", "min_delay"]
    assert spec.total_transforms() == 4
    assert spec.referenced_datasets() == {"binned"}


def test_spec_operator_vs_interaction_signals(histogram_spec):
    spec = parse_spec_dict(histogram_spec)
    assert spec.operator_signal_names() == {"delay_extent"}
    assert spec.interaction_signal_names() == {"maxbins", "min_delay"}


def test_spec_data_entry_lookup(histogram_spec):
    spec = parse_spec_dict(histogram_spec)
    entry = spec.data_entry("binned")
    assert entry.source == "source"
    assert not entry.is_root()
    assert entry.output_signals() == ["delay_extent"]
    with pytest.raises(SpecError):
        spec.data_entry("missing")


def test_spec_validation_errors():
    with pytest.raises(SpecError):
        parse_spec_dict({"data": [{"name": "a", "source": "missing"}]})
    with pytest.raises(SpecError):
        parse_spec_dict({"data": [{"name": "a"}]})  # no table/values/source
    with pytest.raises(SpecError):
        parse_spec_dict({"data": [{"name": "a", "values": []}, {"name": "a", "values": []}]})
    with pytest.raises(SpecError):
        parse_spec_dict(
            {"data": [{"name": "a", "values": []}],
             "marks": [{"type": "rect", "from": {"data": "nope"}}]}
        )
    with pytest.raises(SpecError):
        parse_spec_dict(
            {"data": [{"name": "a", "values": [], "transform": ["bad"]}]}
        )
    with pytest.raises(SpecError):
        parse_spec_dict("not a dict")


# --------------------------------------------------------------------------- #
# Spec compilation
# --------------------------------------------------------------------------- #


def test_compile_spec_builds_expected_operators(histogram_spec, flights_rows):
    dataflow = compile_spec(histogram_spec, {"flights": flights_rows})
    # 1 source + 4 transforms
    assert dataflow.num_operators() == 5
    assert set(dataflow.dataset_names()) == {"source", "binned"}
    assert "delay_extent" in dataflow.operator_names()


def test_compile_spec_missing_provider(histogram_spec):
    with pytest.raises(SpecError):
        compile_spec(histogram_spec)
    with pytest.raises(SpecError):
        compile_spec(histogram_spec, {"not_flights": []})


def test_compile_spec_inline_values():
    spec = {
        "data": [
            {"name": "inline", "values": [{"x": 1}, {"x": 5}],
             "transform": [{"type": "extent", "field": "x", "signal": "ext"}]},
        ],
    }
    dataflow = compile_spec(spec)
    dataflow.run()
    assert dataflow.named_operator("ext").last_result.value == [1.0, 5.0]


# --------------------------------------------------------------------------- #
# Runtime
# --------------------------------------------------------------------------- #


def test_runtime_initialize_and_dataset(histogram_spec, flights_rows):
    runtime = VegaRuntime(histogram_spec, {"flights": flights_rows})
    result = runtime.initialize()
    assert result.evaluated_operator_count == 5
    assert result.elapsed_seconds > 0
    binned = runtime.dataset("binned")
    assert sum(r["count"] for r in binned) == sum(
        1 for r in flights_rows if (r["delay"] or -1) >= 0
    )


def test_runtime_interaction_partial_reevaluation(histogram_spec, flights_rows):
    runtime = VegaRuntime(histogram_spec, {"flights": flights_rows})
    runtime.initialize()
    before = len(runtime.dataset("binned"))
    update = runtime.interact({"maxbins": 40})
    after = len(runtime.dataset("binned"))
    assert update.evaluated_operator_count == 2  # bin + aggregate only
    assert after > before
    assert runtime.signal_value("maxbins") == 40
    assert runtime.render_count == 2
    assert runtime.total_client_seconds > 0


def test_runtime_filter_interaction(histogram_spec, flights_rows):
    runtime = VegaRuntime(histogram_spec, {"flights": flights_rows})
    runtime.initialize()
    update = runtime.interact({"min_delay": 200})
    # Filter, extent, bin and aggregate all depend (directly or transitively).
    assert update.evaluated_operator_count == 4
    binned = runtime.dataset("binned")
    total = sum(r["count"] for r in binned)
    expected = sum(1 for r in flights_rows if r["delay"] is not None and r["delay"] >= 200)
    assert total == expected


def test_runtime_dataset_cardinalities(histogram_spec, flights_rows):
    runtime = VegaRuntime(histogram_spec, {"flights": flights_rows})
    runtime.initialize()
    cardinalities = runtime.dataset_cardinalities()
    assert cardinalities["source"] == len(flights_rows)
    assert cardinalities["binned"] >= 1
