"""Tests for the pairwise comparators, training and consolidation."""

import numpy as np
import pytest

from repro.core.comparators import (
    HeuristicComparator,
    RandomComparator,
    RandomForestComparator,
    RankSVMComparator,
    build_pair_dataset,
    train_comparator,
)
from repro.core.consolidation import consolidate_session, downweight_initial_render
from repro.core.encoder import PlanVector
from repro.errors import OptimizationError


def make_vectors(cardinalities):
    """Plan vectors whose total cardinality is given (one vdt each)."""
    return [
        PlanVector(plan_id=i, counts={"vdt": 1.0}, cardinalities={"vdt": float(c)})
        for i, c in enumerate(cardinalities)
    ]


# --------------------------------------------------------------------------- #
# Pair dataset construction
# --------------------------------------------------------------------------- #


def test_build_pair_dataset_labels_and_gaps():
    vectors = make_vectors([10, 1000])
    dataset = build_pair_dataset(vectors, [0.1, 2.0], normalize=False)
    assert len(dataset) == 1
    assert dataset.labels[0] == 1  # first plan is faster
    assert dataset.latency_gaps[0] == pytest.approx(1.9)


def test_build_pair_dataset_requires_two_plans():
    with pytest.raises(OptimizationError):
        build_pair_dataset(make_vectors([1]), [0.1])
    with pytest.raises(OptimizationError):
        build_pair_dataset(make_vectors([1, 2]), [0.1])


# --------------------------------------------------------------------------- #
# Heuristic comparator rules
# --------------------------------------------------------------------------- #


def test_heuristic_prefers_smaller_cardinality():
    comparator = HeuristicComparator(alpha=1.5)
    small, large = make_vectors([10, 10_000])
    assert comparator.compare(small, large) == 1
    assert comparator.compare(large, small) == 0
    assert comparator.select_best([large, small]) == 1


def test_heuristic_tie_break_by_client_aggregates():
    comparator = HeuristicComparator()
    with_aggregate = PlanVector(
        plan_id=0, counts={"vdt": 1, "aggregate": 1}, cardinalities={"vdt": 100.0}
    )
    without_aggregate = PlanVector(
        plan_id=1, counts={"vdt": 1, "filter": 1}, cardinalities={"vdt": 100.0}
    )
    assert comparator.compare(with_aggregate, without_aggregate) == 1


def test_heuristic_tie_break_by_fewer_client_operators():
    comparator = HeuristicComparator()
    lean = PlanVector(plan_id=0, counts={"vdt": 1, "filter": 1}, cardinalities={"vdt": 10.0})
    busy = PlanVector(
        plan_id=1, counts={"vdt": 1, "filter": 3}, cardinalities={"vdt": 10.0}
    )
    assert comparator.compare(lean, busy) == 1


def test_heuristic_tie_break_by_offloading_and_stability():
    comparator = HeuristicComparator()
    more_vdts = PlanVector(plan_id=0, counts={"vdt": 2}, cardinalities={"vdt": 10.0})
    fewer_vdts = PlanVector(plan_id=1, counts={"vdt": 1}, cardinalities={"vdt": 10.0})
    assert comparator.compare(more_vdts, fewer_vdts) == 1
    identical = PlanVector(plan_id=2, counts={"vdt": 1}, cardinalities={"vdt": 10.0})
    assert comparator.compare(fewer_vdts, identical) == 1  # stable tie-break


def test_heuristic_invalid_alpha():
    with pytest.raises(OptimizationError):
        HeuristicComparator(alpha=0.5)


# --------------------------------------------------------------------------- #
# Random comparator
# --------------------------------------------------------------------------- #


def test_random_comparator_is_seeded_and_roughly_uniform():
    comparator = RandomComparator(seed=3)
    first, second = make_vectors([1, 2])
    outcomes = [comparator.compare(first, second) for _ in range(200)]
    assert 0.3 < np.mean(outcomes) < 0.7
    again = RandomComparator(seed=3)
    assert [again.compare(first, second) for _ in range(200)] == outcomes
    with pytest.raises(OptimizationError):
        comparator.select_best([])


# --------------------------------------------------------------------------- #
# Learned comparators
# --------------------------------------------------------------------------- #


def synthetic_training_set(n_plans: int = 12, seed: int = 0):
    """Plans whose latency grows with their total cardinality."""
    rng = np.random.default_rng(seed)
    cardinalities = rng.uniform(1, 10_000, size=n_plans)
    vectors = make_vectors(cardinalities)
    latencies = [0.001 * c + rng.normal(0, 0.05) for c in cardinalities]
    return vectors, latencies


def test_ranksvm_comparator_learns_cardinality_rule():
    from repro.core.encoder import normalize_cardinalities

    vectors, latencies = synthetic_training_set()
    dataset = build_pair_dataset(vectors, latencies)
    comparator = RankSVMComparator().fit(dataset)
    best = comparator.select_best(normalize_cardinalities(vectors))
    assert latencies[best] <= sorted(latencies)[2]  # among the fastest plans
    assert comparator.cost(vectors[best]) is not None
    assert comparator.feature_weights().shape[0] == len(vectors[0].to_array())


def test_random_forest_comparator_learns_and_votes():
    from repro.core.encoder import normalize_cardinalities

    vectors, latencies = synthetic_training_set()
    dataset = build_pair_dataset(vectors, latencies)
    comparator = RandomForestComparator().fit(dataset)
    normalized = normalize_cardinalities(vectors)
    best = comparator.select_best(normalized)
    assert latencies[best] <= sorted(latencies)[3]
    assert comparator.cost(normalized[0]) is None  # rank-only model
    ranking = comparator.rank(normalized)
    assert len(ranking) == len(vectors)
    assert ranking[0] == best


def test_train_comparator_reports_accuracy():
    vectors, latencies = synthetic_training_set(n_plans=16)
    dataset = build_pair_dataset(vectors, latencies)
    for kind in ("ranksvm", "random_forest", "heuristic", "random"):
        report = train_comparator(kind, dataset, seed=0)
        assert 0.0 <= report.test_accuracy <= 1.0
        assert report.n_pairs == len(dataset)
    svm = train_comparator("ranksvm", dataset, seed=0)
    rnd = train_comparator("random", dataset, seed=0)
    assert svm.test_accuracy > rnd.test_accuracy
    with pytest.raises(OptimizationError):
        train_comparator("neural", dataset)


# --------------------------------------------------------------------------- #
# Consolidation across interactions
# --------------------------------------------------------------------------- #


def test_consolidation_with_cost_model_sums_costs():
    vectors, latencies = synthetic_training_set(n_plans=6)
    dataset = build_pair_dataset(vectors, latencies)
    comparator = RankSVMComparator().fit(dataset)
    episodes = [vectors, vectors, vectors]
    decision = consolidate_session(comparator, episodes)
    assert decision.score_kind == "cost"
    assert decision.best_plan_index == comparator.select_best(vectors)
    assert len(decision.ranking()) == 6


def test_consolidation_with_wins_counts():
    comparator = HeuristicComparator()
    episode_one = make_vectors([10, 10_000, 500])
    episode_two = make_vectors([20, 9_000, 800])
    decision = consolidate_session(comparator, [episode_one, episode_two])
    assert decision.score_kind == "wins"
    assert decision.best_plan_index == 0


def test_consolidation_weights_shift_decision():
    comparator = HeuristicComparator()
    # Plan 0 wins episode 0 by a lot; plan 1 wins episode 1.
    episode_zero = make_vectors([10, 10_000])
    episode_one = make_vectors([10_000, 10])
    uniform = consolidate_session(comparator, [episode_zero, episode_one, episode_one])
    assert uniform.best_plan_index == 1
    weighted = consolidate_session(
        comparator, [episode_zero, episode_one, episode_one], episode_weights=[10.0, 1.0, 1.0]
    )
    assert weighted.best_plan_index == 0


def test_consolidation_validation_errors():
    comparator = HeuristicComparator()
    with pytest.raises(OptimizationError):
        consolidate_session(comparator, [])
    with pytest.raises(OptimizationError):
        consolidate_session(comparator, [[]])
    with pytest.raises(OptimizationError):
        consolidate_session(comparator, [make_vectors([1, 2]), make_vectors([1])])
    with pytest.raises(OptimizationError):
        consolidate_session(comparator, [make_vectors([1, 2])], episode_weights=[1.0, 2.0])


def test_downweight_initial_render_weights():
    weights = downweight_initial_render(4, factor=0.25)
    assert weights == [0.25, 1.0, 1.0, 1.0]
    with pytest.raises(OptimizationError):
        downweight_initial_render(0)
