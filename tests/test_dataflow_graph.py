"""Tests for the dataflow graph: topology, evaluation, partial re-evaluation."""

import pytest

from repro.dataflow import Dataflow, create_transform
from repro.dataflow.operator import Operator, OperatorResult, ParamRef
from repro.dataflow.signals import SignalRegistry
from repro.errors import DataflowError


ROWS = [{"v": float(i)} for i in range(10)]


def build_chain():
    """source -> extent (named) -> bin -> aggregate, with a maxbins signal."""
    dataflow = Dataflow()
    dataflow.declare_signal("maxbins", value=5)
    source = dataflow.add_source(ROWS, name="src")
    extent = create_transform({"type": "extent", "field": "v"})
    dataflow.add_operator(extent, source, name="v_extent")
    bin_op = create_transform(
        {"type": "bin", "field": "v", "maxbins": {"signal": "maxbins"}, "extent": {"operator": "v_extent"}}
    )
    dataflow.add_operator(bin_op, extent)
    aggregate = create_transform(
        {"type": "aggregate", "groupby": ["bin0"], "ops": ["count"], "as": ["count"]}
    )
    dataflow.add_operator(aggregate, bin_op)
    dataflow.mark_dataset("binned", aggregate)
    return dataflow, source, extent, bin_op, aggregate


# --------------------------------------------------------------------------- #
# Signals
# --------------------------------------------------------------------------- #


def test_signal_registry_declare_and_update():
    registry = SignalRegistry()
    registry.declare("x", value=1)
    assert registry.value("x") == 1
    assert registry.set("x", 2, stamp=1) is True
    assert registry.set("x", 2, stamp=2) is False
    assert registry.names() == ["x"]
    with pytest.raises(DataflowError):
        registry.get("missing")


def test_signal_listeners_fire_on_change():
    registry = SignalRegistry()
    registry.declare("x", value=0)
    seen = []
    registry.on_update("x", lambda s: seen.append(s.value))
    registry.set("x", 5, stamp=1)
    registry.set("x", 5, stamp=2)
    assert seen == [5]


# --------------------------------------------------------------------------- #
# Graph construction and evaluation
# --------------------------------------------------------------------------- #


def test_full_run_produces_dataset():
    dataflow, *_ = build_chain()
    report = dataflow.run()
    assert len(report.evaluated_operators) == 4
    assert report.total_seconds >= 0
    binned = dataflow.dataset("binned")
    assert sum(r["count"] for r in binned) == len(ROWS)


def test_topological_order_respects_dependencies():
    dataflow, source, extent, bin_op, aggregate = build_chain()
    order = [op.id for op in dataflow.topological_order()]
    assert order.index(source.id) < order.index(extent.id)
    assert order.index(extent.id) < order.index(bin_op.id)
    assert order.index(bin_op.id) < order.index(aggregate.id)


def test_partial_reevaluation_on_signal_update():
    dataflow, source, extent, bin_op, aggregate = build_chain()
    dataflow.run()
    report = dataflow.update_signal("maxbins", 20)
    evaluated = set(report.evaluated_operators)
    # Only bin (depends on maxbins) and its dependents re-run.
    assert bin_op.id in evaluated
    assert aggregate.id in evaluated
    assert source.id not in evaluated
    assert extent.id not in evaluated
    assert len(dataflow.dataset("binned")) > 5


def test_unchanged_signal_triggers_nothing():
    dataflow, *_ = build_chain()
    dataflow.run()
    report = dataflow.update_signal("maxbins", 5)
    assert report.evaluated_operators == []


def test_update_signals_batch():
    dataflow, *_ = build_chain()
    dataflow.declare_signal("unused", value=0)
    dataflow.run()
    report = dataflow.update_signals({"maxbins": 7, "unused": 1})
    assert len(report.evaluated_operators) == 2


def test_dataset_before_run_raises():
    dataflow, *_ = build_chain()
    with pytest.raises(DataflowError):
        dataflow.dataset("binned")
    with pytest.raises(DataflowError):
        dataflow.dataset("unknown")


def test_duplicate_operator_and_name_rejected():
    dataflow = Dataflow()
    source = dataflow.add_source(ROWS, name="src")
    with pytest.raises(DataflowError):
        dataflow.add_operator(source)
    other = Dataflow()
    foreign = other.add_source(ROWS)
    extent = create_transform({"type": "extent", "field": "v"})
    with pytest.raises(DataflowError):
        dataflow.add_operator(extent, foreign)
    extent2 = create_transform({"type": "extent", "field": "v"})
    dataflow.add_operator(extent2, source, name="src2")
    extent3 = create_transform({"type": "extent", "field": "v"})
    with pytest.raises(DataflowError):
        dataflow.add_operator(extent3, source, name="src2")


def test_unknown_operator_reference_detected():
    dataflow = Dataflow()
    source = dataflow.add_source(ROWS)
    bin_op = create_transform(
        {"type": "bin", "field": "v", "extent": {"operator": "missing_extent"}}
    )
    dataflow.add_operator(bin_op, source)
    with pytest.raises(DataflowError):
        dataflow.run()


def test_param_ref_validation():
    with pytest.raises(DataflowError):
        ParamRef(kind="bogus", name="x")


def test_downstream_and_upstream_lookup():
    dataflow, source, extent, bin_op, aggregate = build_chain()
    assert dataflow.upstream_of(extent) is source
    downstream_ids = {op.id for op in dataflow.downstream_of(extent)}
    assert bin_op.id in downstream_ids


def test_report_merge():
    dataflow, *_ = build_chain()
    first = dataflow.run()
    second = dataflow.update_signal("maxbins", 9)
    merged = first.merge(second)
    assert merged.total_seconds == pytest.approx(first.total_seconds + second.total_seconds)
    assert len(merged.evaluated_operators) == len(first.evaluated_operators) + len(
        second.evaluated_operators
    )


def test_custom_operator_subclass_runs():
    class DoubleOperator(Operator):
        def evaluate(self, source, params, context):
            return OperatorResult(rows=[{**r, "v": r["v"] * 2} for r in source])

    dataflow = Dataflow()
    src = dataflow.add_source(ROWS)
    double = DoubleOperator(name="double")
    dataflow.add_operator(double, src)
    dataflow.mark_dataset("doubled", double)
    dataflow.run()
    assert dataflow.dataset("doubled")[1]["v"] == 2.0
