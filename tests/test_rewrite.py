"""Tests for query rewriting: SQL templates, VDTs and the spec rewriter."""

import pytest

from repro.errors import OptimizationError, RewriteError
from repro.net import MiddlewareServer
from repro.rewrite import SpecRewriter, transform_supports_sql
from repro.rewrite.templates import QueryFragment, apply_transform, build_fragment_for_transforms
from repro.sql import Database
from repro.vega.spec import parse_spec_dict


# --------------------------------------------------------------------------- #
# QueryFragment and per-transform builders
# --------------------------------------------------------------------------- #


def test_fragment_for_table_and_nesting():
    fragment = QueryFragment.for_table("flights")
    assert fragment.to_sql() == "SELECT * FROM flights"
    nested = fragment.nest()
    assert nested.to_sql() == "SELECT * FROM (SELECT * FROM flights) AS sub"


def test_filter_composes_into_where():
    fragment = QueryFragment.for_table("flights")
    fragment = apply_transform(
        fragment,
        {"type": "filter"},
        {"expr": "datum.delay > 10", "_signals": {}},
    )
    fragment = apply_transform(
        fragment,
        {"type": "filter"},
        {"expr": "datum.distance < 500", "_signals": {}},
    )
    sql = fragment.to_sql()
    assert sql.count("WHERE") == 1
    assert "delay > 10" in sql and "distance < 500" in sql


def test_filter_with_untranslatable_expression_raises():
    fragment = QueryFragment.for_table("flights")
    with pytest.raises(RewriteError):
        apply_transform(
            fragment, {"type": "filter"}, {"expr": "year(datum.date) == 1999", "_signals": {}}
        )


def test_extent_builder():
    fragment = QueryFragment.for_table("flights")
    fragment = apply_transform(fragment, {"type": "extent"}, {"field": "delay"})
    assert fragment.to_sql() == (
        "SELECT MIN(delay) AS min_val, MAX(delay) AS max_val FROM flights"
    )


def test_bin_and_aggregate_merge_into_one_block():
    """Example 4.1: the aggregate absorbs the bin query."""
    fragment = build_fragment_for_transforms(
        "flights",
        [{"type": "bin"}, {"type": "aggregate"}],
        [
            {"field": "delay", "maxbins": 10, "extent": [0.0, 100.0], "as": ["bin0", "bin1"]},
            {"groupby": ["bin0"], "ops": ["count"], "as": ["count"]},
        ],
    )
    sql = fragment.to_sql()
    assert sql.count("SELECT") == 1  # single block, no nesting
    assert "FLOOR" in sql and "GROUP BY bin0" in sql and "COUNT(*)" in sql


def test_bin_requires_extent():
    fragment = QueryFragment.for_table("flights")
    with pytest.raises(RewriteError):
        apply_transform(fragment, {"type": "bin"}, {"field": "delay", "maxbins": 10})


def test_filter_after_aggregate_nests():
    fragment = build_fragment_for_transforms(
        "flights",
        [{"type": "aggregate"}, {"type": "filter"}],
        [
            {"groupby": ["carrier"], "ops": ["count"], "as": ["n"]},
            {"expr": "datum.n > 5", "_signals": {}},
        ],
    )
    sql = fragment.to_sql()
    assert sql.count("SELECT") == 2  # nested sub-query
    assert "WHERE" in sql


def test_collect_and_project_builders():
    fragment = build_fragment_for_transforms(
        "flights",
        [{"type": "project"}, {"type": "collect"}],
        [
            {"fields": ["carrier", "delay"], "as": ["carrier", "d"]},
            {"sort": {"field": "d", "order": "descending"}},
        ],
    )
    sql = fragment.to_sql()
    assert "delay AS d" in sql
    assert "ORDER BY d DESC" in sql


def test_stack_uses_window_function():
    fragment = build_fragment_for_transforms(
        "flights",
        [{"type": "stack"}],
        [{"field": "delay", "groupby": ["carrier"], "sort": {"field": "distance"}}],
    )
    sql = fragment.to_sql()
    assert "SUM(delay) OVER (PARTITION BY carrier ORDER BY distance)" in sql
    assert "y1 - delay AS y0" in sql


def test_timeunit_builder():
    fragment = build_fragment_for_transforms(
        "flights",
        [{"type": "timeunit"}],
        [{"field": "date", "units": "day"}],
    )
    sql = fragment.to_sql()
    assert "FLOOR(date / 86400.0) * 86400.0 AS unit0" in sql


def test_unsupported_transform_rejected():
    assert transform_supports_sql("aggregate")
    assert not transform_supports_sql("joinaggregate")
    with pytest.raises(RewriteError):
        apply_transform(QueryFragment.for_table("t"), {"type": "joinaggregate"}, {})


def test_generated_sql_executes_on_engine(flights_db):
    fragment = build_fragment_for_transforms(
        "flights",
        [{"type": "filter"}, {"type": "bin"}, {"type": "aggregate"}],
        [
            {"expr": "datum.delay >= 0", "_signals": {}},
            {"field": "delay", "maxbins": 10, "extent": [0.0, 600.0], "as": ["bin0", "bin1"]},
            {"groupby": ["bin0", "bin1"], "ops": ["count"], "as": ["count"]},
        ],
    )
    result = flights_db.execute(fragment.to_sql())
    assert result.num_rows >= 1
    assert set(result.table.column_names()) == {"bin0", "bin1", "count"}


# --------------------------------------------------------------------------- #
# SpecRewriter
# --------------------------------------------------------------------------- #


@pytest.fixture()
def rewriter(histogram_spec, flights_db):
    spec = parse_spec_dict(histogram_spec)
    middleware = MiddlewareServer(flights_db)
    return SpecRewriter(spec, middleware), spec


def test_rewriter_all_client_plan_fetches_table(rewriter):
    spec_rewriter, _spec = rewriter
    built = spec_rewriter.build({"source": 0, "binned": 0})
    report = built.dataflow.run()
    assert len(built.vdts) == 1  # the raw-table fetch
    assert built.vdts[0].last_sql == "SELECT * FROM flights"
    assert report.total_seconds > 0


def test_rewriter_all_server_plan_single_aggregate_query(rewriter):
    spec_rewriter, _spec = rewriter
    built = spec_rewriter.build({"source": 0, "binned": 4})
    built.dataflow.run()
    sqls = [v.last_sql for v in built.vdts]
    assert any("MIN(delay)" in s for s in sqls)  # extent VDT
    assert any("GROUP BY" in s for s in sqls)  # bin+aggregate VDT
    # The fully offloaded plan never transfers the raw table.
    assert built.bytes_transferred() < 10_000


def test_rewriter_equivalent_results_across_plans(rewriter, flights_rows):
    """Every partitioning must produce the same binned histogram."""
    spec_rewriter, _spec = rewriter
    reference = None
    for split in (0, 2, 4):
        built = spec_rewriter.build({"source": 0, "binned": split})
        built.dataflow.run()
        binned = {
            (round(r["bin0"], 6), r["count"]) for r in built.dataflow.dataset("binned")
        }
        if reference is None:
            reference = binned
        else:
            assert binned == reference, f"plan with split {split} diverged"


def test_rewriter_signal_update_reissues_sql(rewriter):
    spec_rewriter, _spec = rewriter
    built = spec_rewriter.build({"source": 0, "binned": 4})
    built.dataflow.run()
    bins_before = len(built.dataflow.dataset("binned"))
    built.dataflow.update_signals({"maxbins": 40})
    bins_after = len(built.dataflow.dataset("binned"))
    assert bins_after > bins_before


def test_rewriter_rejects_invalid_assignments(rewriter):
    spec_rewriter, _spec = rewriter
    with pytest.raises(OptimizationError):
        spec_rewriter.build({"source": 0, "binned": 9})
    with pytest.raises(OptimizationError):
        spec_rewriter.build({"source": 0, "binned": -1})


def test_rewriter_child_requires_server_parent(flights_db):
    spec = parse_spec_dict(
        {
            "data": [
                {"name": "source", "table": "flights"},
                {
                    "name": "filtered",
                    "source": "source",
                    "transform": [{"type": "filter", "expr": "datum.delay > 0"}],
                },
                {
                    "name": "agg",
                    "source": "filtered",
                    "transform": [
                        {"type": "aggregate", "groupby": ["carrier"], "ops": ["count"], "as": ["n"]}
                    ],
                },
            ],
            "marks": [{"type": "rect", "from": {"data": "agg"}}],
        }
    )
    rewriter = SpecRewriter(spec, MiddlewareServer(flights_db))
    # Parent kept on the client -> child cannot offload.
    with pytest.raises(OptimizationError):
        rewriter.build({"source": 0, "filtered": 0, "agg": 1})
    # Parent fully offloaded -> child may offload and nests the parent's SQL.
    built = rewriter.build({"source": 0, "filtered": 1, "agg": 1})
    built.dataflow.run()
    sql = built.vdts[-1].last_sql
    assert "WHERE" in sql and "GROUP BY carrier" in sql


def test_client_row_consumers_dependency_checking(rewriter):
    spec_rewriter, _spec = rewriter
    needed = spec_rewriter.client_row_consumers({"source": 0, "binned": 4})
    # Only 'binned' is referenced by scales/marks; the raw source rows are not
    # needed on the client when everything is offloaded.
    assert "binned" in needed
    assert "source" not in needed


def test_vdt_cost_log_tracks_cache_hits(rewriter):
    spec_rewriter, _spec = rewriter
    built = spec_rewriter.build({"source": 0, "binned": 4})
    built.dataflow.run()
    # Re-running the same signals re-issues identical SQL, served by cache.
    built.dataflow.update_signals({"maxbins": 10, "min_delay": 0})
    built.dataflow.update_signals({"maxbins": 20})
    built.dataflow.update_signals({"maxbins": 10})
    total_hits = sum(v.cost_log.cache_hits for v in built.vdts)
    assert total_hits >= 1
