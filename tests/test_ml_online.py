"""Edge cases for ml preprocessing/metrics and online RankSVM training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OnlineComparatorTrainer, PlanVector
from repro.errors import ModelError
from repro.ml import MinMaxScaler, RankSVM, accuracy_score, confusion_counts, train_test_split


# --------------------------------------------------------------------------- #
# Preprocessing edges
# --------------------------------------------------------------------------- #


def test_train_test_split_single_sample_keeps_it_in_train():
    features = np.array([[1.0, 2.0]])
    labels = np.array([1])
    x_train, x_test, y_train, y_test = train_test_split(features, labels)
    assert len(x_train) == 1 and len(y_train) == 1
    assert len(x_test) == 0 and len(y_test) == 0


def test_train_test_split_two_samples_never_empties_either_side():
    features = np.arange(4.0).reshape(2, 2)
    labels = np.array([0, 1])
    x_train, x_test, _, _ = train_test_split(features, labels, test_fraction=0.9)
    assert len(x_train) == 1 and len(x_test) == 1


def test_train_test_split_guards():
    features = np.arange(4.0).reshape(2, 2)
    with pytest.raises(ModelError):
        train_test_split(features, np.array([1]))
    with pytest.raises(ModelError):
        train_test_split(features, np.array([0, 1]), test_fraction=0.0)
    with pytest.raises(ModelError):
        train_test_split(features, np.array([0, 1]), test_fraction=1.0)


def test_minmax_scaler_constant_and_nan_features():
    scaler = MinMaxScaler()
    features = np.array([[1.0, np.nan, 5.0], [1.0, 2.0, 10.0]])
    scaled = scaler.fit_transform(features)
    # Constant features map to 0 (not NaN/inf) ...
    assert np.all(scaled[:, 0] == 0.0)
    # ... NaN inputs propagate as NaN rather than crashing ...
    assert np.isnan(scaled[0, 1])
    # ... and regular features land in [0, 1].
    assert scaled[0, 2] == 0.0 and scaled[1, 2] == 1.0


def test_minmax_scaler_requires_fit_and_2d():
    scaler = MinMaxScaler()
    with pytest.raises(ModelError):
        scaler.transform(np.zeros((1, 2)))
    with pytest.raises(ModelError):
        scaler.fit(np.zeros(3))


# --------------------------------------------------------------------------- #
# Metrics edges
# --------------------------------------------------------------------------- #


def test_accuracy_score_edges():
    assert accuracy_score(np.array([]), np.array([])) == 0.0
    ones = np.ones(5)
    assert accuracy_score(ones, ones) == 1.0  # single-class stream
    assert accuracy_score(ones, np.zeros(5)) == 0.0
    with pytest.raises(ModelError):
        accuracy_score(np.array([1]), np.array([1, 0]))


def test_confusion_counts_single_class():
    y = np.ones(4)
    counts = confusion_counts(y, y)
    assert counts == {
        "true_positive": 4,
        "true_negative": 0,
        "false_positive": 0,
        "false_negative": 0,
    }
    with pytest.raises(ModelError):
        confusion_counts(np.array([1]), np.array([1, 0]))


# --------------------------------------------------------------------------- #
# RankSVM.partial_fit
# --------------------------------------------------------------------------- #


def _separable_pairs(n_pairs, n_features, seed):
    """Difference vectors labelled by a hidden linear cost with margin."""
    rng = np.random.default_rng(seed)
    true_weights = rng.normal(size=n_features)
    true_weights /= np.linalg.norm(true_weights)
    differences = []
    while len(differences) < n_pairs:
        candidate = rng.normal(size=n_features)
        if abs(candidate @ true_weights) > 0.3:  # enforce a margin
            differences.append(candidate)
    differences = np.array(differences)
    scores = differences @ true_weights
    labels = (scores < 0).astype(int)  # first plan faster when cost diff < 0
    return differences, labels


def test_partial_fit_initialises_cold_and_checks_dimensions():
    model = RankSVM()
    differences, labels = _separable_pairs(10, 4, seed=0)
    model.partial_fit(differences, labels)
    assert model.weights_ is not None and model.weights_.shape == (4,)
    with pytest.raises(ModelError):
        model.partial_fit(np.zeros((2, 7)), np.zeros(2))
    with pytest.raises(ModelError):
        model.partial_fit(np.zeros((0, 4)), np.zeros(0))


def test_partial_fit_learning_rate_decays_across_calls():
    model = RankSVM()
    differences, labels = _separable_pairs(8, 3, seed=1)
    model.partial_fit(differences, labels)
    step_after_first = model._step
    model.partial_fit(differences, labels)
    assert model._step == step_after_first + len(differences)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_partial_fit_stream_converges_to_batch_accuracy(seed):
    """Streaming the pairs through partial_fit reaches (near-)batch accuracy."""
    differences, labels = _separable_pairs(60, 6, seed=seed)

    batch = RankSVM(seed=seed).fit(differences, labels)
    batch_accuracy = accuracy_score(labels, batch.predict(differences))

    online = RankSVM(seed=seed)
    chunks = np.array_split(np.arange(len(labels)), 6)
    for _epoch in range(40):
        for chunk in chunks:
            online.partial_fit(differences[chunk], labels[chunk])
    online_accuracy = accuracy_score(labels, online.predict(differences))

    assert batch_accuracy >= 0.9  # sanity: the data is separable
    assert online_accuracy >= batch_accuracy - 0.1


# --------------------------------------------------------------------------- #
# OnlineComparatorTrainer
# --------------------------------------------------------------------------- #


def _observation(plan_id, cardinality):
    return PlanVector(
        plan_id=plan_id, counts={"vdt": 1.0}, cardinalities={"vdt": cardinality}
    )


def test_online_trainer_learns_cardinality_cost():
    trainer = OnlineComparatorTrainer(window=16)
    rng = np.random.default_rng(0)
    for i in range(80):
        cardinality = float(rng.uniform(1, 10_000))
        trainer.observe(_observation(i, cardinality), latency_seconds=cardinality * 1e-4)
    assert trainer.observations == 80
    assert trainer.pairs_trained > 0
    assert trainer.recent_accuracy() > 0.7  # bigger transfer == slower, learned online
    snapshot = trainer.snapshot()
    assert snapshot["observations"] == 80.0
    assert snapshot["updates"] > 0


def test_online_trainer_skips_near_ties():
    trainer = OnlineComparatorTrainer(window=8, min_relative_gap=0.5)
    trainer.observe(_observation(0, 100.0), latency_seconds=0.100)
    trainer.observe(_observation(1, 105.0), latency_seconds=0.101)  # near-tie
    assert trainer.pairs_trained == 0
    trainer.observe(_observation(2, 5_000.0), latency_seconds=0.5)
    assert trainer.pairs_trained == 2
