"""Tests for execution plans, enumeration and plan encoding."""

import pytest

from repro.core import ExecutionPlan, PlanEncoder, PlanEnumerator
from repro.core.encoder import FEATURE_OPERATOR_TYPES, PlanVector, feature_names, normalize_cardinalities
from repro.errors import OptimizationError
from repro.net import MiddlewareServer
from repro.rewrite import SpecRewriter
from repro.vega.spec import parse_spec_dict


@pytest.fixture()
def spec(histogram_spec):
    return parse_spec_dict(histogram_spec)


# --------------------------------------------------------------------------- #
# ExecutionPlan
# --------------------------------------------------------------------------- #


def test_plan_accessors(spec):
    plan = ExecutionPlan.from_mapping({"source": 0, "binned": 2}, plan_id=3)
    assert plan.split_for("binned") == 2
    assert plan.split_for("unknown") == 0
    assert plan.total_server_transforms() == 2
    assert not plan.is_all_client()
    assert not plan.is_all_server(spec)
    assert "binned=server[2]/client[2]" in plan.describe(spec)


def test_plan_all_client_all_server(spec):
    assert ExecutionPlan.from_mapping({"source": 0, "binned": 0}).is_all_client()
    assert ExecutionPlan.from_mapping({"source": 0, "binned": 4}).is_all_server(spec)


def test_plan_equality_and_hash():
    a = ExecutionPlan.from_mapping({"x": 1})
    b = ExecutionPlan.from_mapping({"x": 1})
    assert a == b
    assert hash(a) == hash(b)


# --------------------------------------------------------------------------- #
# PlanEnumerator
# --------------------------------------------------------------------------- #


def test_enumerator_histogram_plan_count(spec):
    """The running example has 4 rewritable transforms → 5 split points."""
    plans = PlanEnumerator(spec).enumerate()
    assert len(plans) == 5
    splits = sorted(p.split_for("binned") for p in plans)
    assert splits == [0, 1, 2, 3, 4]
    assert [p.plan_id for p in plans] == list(range(5))


def test_enumerator_blocks_after_unsupported_transform(flights_db):
    spec = parse_spec_dict(
        {
            "data": [
                {"name": "source", "table": "flights"},
                {
                    "name": "derived",
                    "source": "source",
                    "transform": [
                        {"type": "filter", "expr": "datum.delay > 0"},
                        {"type": "joinaggregate", "groupby": ["carrier"], "ops": ["count"]},
                        {"type": "aggregate", "groupby": ["carrier"], "ops": ["count"]},
                    ],
                },
            ],
            "marks": [{"type": "rect", "from": {"data": "derived"}}],
        }
    )
    enumerator = PlanEnumerator(spec)
    # joinaggregate is not rewritable, so the server prefix stops at 1.
    assert enumerator.rewritable_prefix(spec.data_entry("derived")) == 1
    assert len(enumerator.enumerate()) == 2


def test_enumerator_child_depends_on_parent():
    spec = parse_spec_dict(
        {
            "data": [
                {"name": "source", "table": "t"},
                {"name": "filtered", "source": "source",
                 "transform": [{"type": "filter", "expr": "datum.x > 0"}]},
                {"name": "agg", "source": "filtered",
                 "transform": [{"type": "aggregate", "groupby": ["g"], "ops": ["count"]}]},
            ],
            "marks": [{"type": "rect", "from": {"data": "agg"}}],
        }
    )
    plans = PlanEnumerator(spec).enumerate()
    # filtered has 2 options; agg can only offload when filtered == 1:
    # (0,0), (1,0), (1,1) -> 3 plans.
    assert len(plans) == 3
    for plan in plans:
        if plan.split_for("agg") == 1:
            assert plan.split_for("filtered") == 1


def test_enumerator_inline_values_never_offloaded():
    spec = parse_spec_dict(
        {
            "data": [
                {"name": "inline", "values": [{"x": 1}],
                 "transform": [{"type": "aggregate", "ops": ["count"]}]},
            ],
            "marks": [{"type": "rect", "from": {"data": "inline"}}],
        }
    )
    plans = PlanEnumerator(spec).enumerate()
    assert len(plans) == 1
    assert plans[0].is_all_client()


def test_enumerator_all_client_all_server_helpers(spec):
    enumerator = PlanEnumerator(spec)
    assert enumerator.all_client_plan().is_all_client()
    assert enumerator.all_server_plan().is_all_server(spec)


def test_enumerator_max_plans_guard(spec):
    with pytest.raises(OptimizationError):
        PlanEnumerator(spec, max_plans=2).enumerate()


# --------------------------------------------------------------------------- #
# PlanEncoder / PlanVector
# --------------------------------------------------------------------------- #


def test_plan_vector_array_layout():
    vector = PlanVector(plan_id=0, counts={"vdt": 2}, cardinalities={"vdt": 100.0})
    array = vector.to_array()
    assert len(array) == 2 * len(FEATURE_OPERATOR_TYPES)
    assert array[FEATURE_OPERATOR_TYPES.index("vdt")] == 2
    assert len(feature_names()) == len(array)
    assert vector.vdt_cardinality == 100.0


def test_normalize_cardinalities_log_scale():
    vectors = [
        PlanVector(plan_id=0, cardinalities={"vdt": 0.0}),
        PlanVector(plan_id=1, cardinalities={"vdt": 50.0}),
        PlanVector(plan_id=2, cardinalities={"vdt": 100.0}),
        PlanVector(plan_id=3, cardinalities={"vdt": 1e7}),
        PlanVector(plan_id=4, cardinalities={"vdt": 1e9}),
    ]
    scaled = [v.cardinalities["vdt"] for v in normalize_cardinalities(vectors)]
    # Zero stays zero, larger cardinalities map to strictly larger values,
    # everything lands in [0, 1] and the cap clamps.
    assert scaled[0] == 0.0
    assert scaled[0] < scaled[1] < scaled[2] < scaled[3]
    assert all(0.0 <= value <= 1.0 for value in scaled)
    assert scaled[4] == 1.0
    # Set-independence: a vector encodes the same alone as in a group.
    alone = normalize_cardinalities([vectors[1]])[0]
    assert alone.cardinalities["vdt"] == scaled[1]
    assert normalize_cardinalities([]) == []


def test_encoder_measured_vs_estimated(spec, flights_db):
    middleware = MiddlewareServer(flights_db)
    rewriter = SpecRewriter(spec, middleware)
    encoder = PlanEncoder(flights_db)

    built = rewriter.build({"source": 0, "binned": 4})
    estimated = encoder.encode_estimated(built, plan_id=4)
    assert estimated.counts["vdt"] == 2  # extent VDT + bin/aggregate VDT
    built.dataflow.run()
    measured = encoder.encode_measured(built, plan_id=4)
    assert measured.counts == estimated.counts
    assert measured.vdt_cardinality > 0

    client_plan = rewriter.build({"source": 0, "binned": 0})
    client_estimated = encoder.encode_estimated(client_plan, plan_id=0)
    # The all-client plan moves the whole table, so its estimated cardinality
    # far exceeds the fully offloaded plan's.
    assert client_estimated.total_cardinality > estimated.total_cardinality * 3
    assert client_estimated.counts["aggregate"] == 1


def test_encoder_measured_episode_subset(spec, flights_db):
    middleware = MiddlewareServer(flights_db)
    rewriter = SpecRewriter(spec, middleware)
    encoder = PlanEncoder(flights_db)
    built = rewriter.build({"source": 0, "binned": 0})
    built.dataflow.run()
    report = built.dataflow.update_signals({"maxbins": 30})
    episode_vector = encoder.encode_measured(
        built, plan_id=0, operator_ids=report.evaluated_operators, episode=1
    )
    full_vector = encoder.encode_measured(built, plan_id=0)
    assert episode_vector.episode == 1
    assert sum(episode_vector.counts.values()) < sum(full_vector.counts.values())
