"""Tests for the Vega expression language: parsing, evaluation, SQL translation."""

import pytest

from repro.errors import ExpressionError, ExpressionParseError, ExpressionTranslationError
from repro.expr import (
    BinaryNode,
    ConditionalNode,
    Evaluator,
    evaluate,
    is_translatable,
    parse_expression,
    referenced_fields,
    referenced_signals,
    to_sql,
)


# --------------------------------------------------------------------------- #
# Parsing
# --------------------------------------------------------------------------- #


def test_parse_member_access_and_comparison():
    node = parse_expression("datum.delay > 10")
    assert isinstance(node, BinaryNode)
    assert node.op == ">"
    assert referenced_fields(node) == {"delay"}


def test_parse_bracket_member_access():
    node = parse_expression("datum['air time'] >= 5")
    assert referenced_fields(node) == {"air time"}


def test_parse_logical_precedence():
    node = parse_expression("a && b || c")
    assert node.op == "||"
    assert node.left.op == "&&"


def test_parse_arithmetic_precedence():
    node = parse_expression("1 + 2 * 3")
    assert evaluate(node) == 7


def test_parse_conditional():
    node = parse_expression("datum.x > 0 ? 'pos' : 'neg'")
    assert isinstance(node, ConditionalNode)
    assert evaluate(node, {"x": 3}) == "pos"
    assert evaluate(node, {"x": -1}) == "neg"


def test_parse_strict_equality_normalised():
    node = parse_expression("datum.a === 3")
    assert node.op == "=="


def test_parse_function_call_and_signals():
    node = parse_expression("abs(datum.delay) > threshold")
    assert referenced_signals(node) == {"threshold"}
    assert referenced_fields(node) == {"delay"}


def test_parse_errors():
    with pytest.raises(ExpressionParseError):
        parse_expression("datum.delay >")
    with pytest.raises(ExpressionParseError):
        parse_expression("'unterminated")
    with pytest.raises(ExpressionParseError):
        parse_expression("")
    with pytest.raises(ExpressionParseError):
        parse_expression("a ? b")
    with pytest.raises(ExpressionParseError):
        parse_expression("(a + b")


# --------------------------------------------------------------------------- #
# Evaluation
# --------------------------------------------------------------------------- #


def test_evaluate_filter_expression_from_paper():
    expr = "datum.delay > 10 && datum.delay < 30"
    assert evaluate(expr, {"delay": 20}) is True
    assert evaluate(expr, {"delay": 35}) is False
    assert evaluate(expr, {"delay": None}) is False


def test_evaluate_signals():
    assert evaluate("datum.v >= lo && datum.v <= hi", {"v": 5}, {"lo": 1, "hi": 10}) is True
    assert evaluate("datum.v >= lo && datum.v <= hi", {"v": 50}, {"lo": 1, "hi": 10}) is False


def test_evaluate_unknown_signal_raises():
    with pytest.raises(ExpressionError):
        evaluate("missing_signal > 1", {})


def test_evaluate_equality_is_loose():
    assert evaluate("datum.a == '3'", {"a": 3}) is True
    assert evaluate("datum.a == 'x'", {"a": 3}) is False
    assert evaluate("datum.a == null", {"a": None}) is True


def test_evaluate_arithmetic_with_nulls():
    assert evaluate("datum.a + 1", {"a": None}) is None
    assert evaluate("datum.a / 0", {"a": 4}) is None


def test_evaluate_string_concatenation():
    assert evaluate("datum.a + '!'", {"a": "hi"}) == "hi!"


def test_evaluate_math_functions():
    assert evaluate("floor(3.7)") == 3
    assert evaluate("ceil(3.2)") == 4
    assert evaluate("abs(0 - 5)") == 5
    assert evaluate("sqrt(16)") == 4
    assert evaluate("pow(2, 10)") == 1024
    assert evaluate("min(3, 1, 2)") == 1
    assert evaluate("max(3, 1, 2)") == 3
    assert evaluate("round(2.5)") == 2  # Python banker's rounding


def test_evaluate_isvalid_and_if():
    assert evaluate("isValid(datum.x)", {"x": 1}) is True
    assert evaluate("isValid(datum.x)", {"x": None}) is False
    assert evaluate("if(datum.x > 0, 'yes', 'no')", {"x": 2}) == "yes"


def test_evaluate_string_functions():
    assert evaluate("upper(datum.s)", {"s": "abc"}) == "ABC"
    assert evaluate("lower(datum.s)", {"s": "ABC"}) == "abc"
    assert evaluate("length(datum.s)", {"s": "abcd"}) == 4


def test_evaluate_negation_and_not():
    assert evaluate("!(datum.x > 0)", {"x": 5}) is False
    assert evaluate("-datum.x", {"x": 5}) == -5


def test_evaluate_unknown_function_raises():
    with pytest.raises(ExpressionError):
        evaluate("frobnicate(1)")


def test_evaluator_reuse_across_data():
    evaluator = Evaluator(signals={"lo": 10})
    ast = parse_expression("datum.v > lo")
    assert evaluator.evaluate(ast, {"v": 20}) is True
    assert evaluator.evaluate(ast, {"v": 5}) is False


# --------------------------------------------------------------------------- #
# SQL translation
# --------------------------------------------------------------------------- #


def test_to_sql_paper_example():
    sql = to_sql("datum.delay > 10 && datum.delay < 30")
    assert sql == "((delay > 10) AND (delay < 30))"


def test_to_sql_inlines_signal_values():
    sql = to_sql("datum.v >= lo && datum.v <= hi", {"lo": 1.5, "hi": 9})
    assert "1.5" in sql and "9" in sql


def test_to_sql_string_literal_escaped():
    sql = to_sql("datum.name == \"O'Hare\"")
    assert "O''Hare" in sql


def test_to_sql_null_comparison_becomes_is_null():
    assert to_sql("datum.x == null") == "x IS NULL"
    assert to_sql("datum.x != null") == "x IS NOT NULL"


def test_to_sql_isvalid_and_conditional():
    assert to_sql("isValid(datum.x)") == "x IS NOT NULL"
    sql = to_sql("datum.x > 0 ? 1 : 0")
    assert sql.startswith("CASE WHEN")


def test_to_sql_functions():
    assert to_sql("abs(datum.x)") == "ABS(x)"
    assert to_sql("floor(datum.x / 10)") == "FLOOR((x / 10))"


def test_to_sql_unbound_signal_fails():
    with pytest.raises(ExpressionTranslationError):
        to_sql("datum.v > threshold")
    assert not is_translatable("datum.v > threshold")


def test_to_sql_untranslatable_function_fails():
    with pytest.raises(ExpressionTranslationError):
        to_sql("year(datum.date) == 1999")
    assert is_translatable("datum.delay > 10")


def test_to_sql_round_trip_matches_evaluator(flights_db, flights_rows):
    """The translated predicate must select the same rows as the evaluator."""
    expr = "datum.delay > 10 && datum.distance < 2000"
    client_side = [
        r for r in flights_rows if evaluate(expr, r) is True
    ]
    server_side = flights_db.query_rows(f"SELECT * FROM flights WHERE {to_sql(expr)}")
    assert len(client_side) == len(server_side)
