"""Tests for the cardinality-feedback layer and the feedback collector."""

import threading

import pytest

from repro.backends import create_backend
from repro.core import OnlineComparatorTrainer, PlanVector, vdt_shape_key
from repro.server import FeedbackCollector, RequestScheduler, SessionManager
from repro.sql.engine import Database
from repro.sql.explain import query_shape
from repro.storage.statistics import CardinalityFeedback


# --------------------------------------------------------------------------- #
# CardinalityFeedback
# --------------------------------------------------------------------------- #


def test_cardinality_feedback_ewma_and_blend():
    feedback = CardinalityFeedback(alpha=0.5, confidence=2.0)
    assert feedback.correct("k", 10.0) == 10.0  # unobserved: estimate unchanged
    feedback.observe("k", 100.0)
    feedback.observe("k", 200.0)
    assert feedback.observed_rows("k") == pytest.approx(150.0)
    # Two observations, confidence 2 -> weight 0.5 on the EWMA.
    assert feedback.correct("k", 10.0) == pytest.approx(0.5 * 10.0 + 0.5 * 150.0)
    # A heavily observed shape is trusted almost entirely.
    for _ in range(50):
        feedback.observe("hot", 300.0)
    assert feedback.correct("hot", 1.0) == pytest.approx(300.0, rel=0.05)
    assert len(feedback) == 2
    snapshot = feedback.snapshot()
    assert snapshot["shapes_tracked"] == 2.0
    assert snapshot["observations"] == 52.0
    feedback.clear()
    assert len(feedback) == 0


def test_cardinality_feedback_parameter_guards():
    with pytest.raises(ValueError):
        CardinalityFeedback(alpha=0.0)
    with pytest.raises(ValueError):
        CardinalityFeedback(confidence=0.0)


def test_cardinality_feedback_thread_safety():
    feedback = CardinalityFeedback()
    n_threads, per_thread = 8, 200

    def worker(index):
        for i in range(per_thread):
            feedback.observe(f"shape-{index % 4}", float(i))
            feedback.correct(f"shape-{index % 4}", 1.0)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert feedback.snapshot()["observations"] == float(n_threads * per_thread)


# --------------------------------------------------------------------------- #
# Shape keys
# --------------------------------------------------------------------------- #


def test_query_shape_strips_literals():
    a = query_shape("SELECT c, COUNT(*) FROM t WHERE x >= 30 GROUP BY c ORDER BY c")
    b = query_shape("SELECT c,  COUNT(*) FROM t WHERE x >= 99.5 GROUP BY c ORDER BY c")
    assert a == b
    assert "?" in a
    # Different predicate shapes stay distinct.
    c = query_shape("SELECT c, COUNT(*) FROM t WHERE y >= 30 GROUP BY c ORDER BY c")
    assert a != c
    # String literals are stripped too.
    assert query_shape("SELECT * FROM t WHERE name = 'alice'") == query_shape(
        "SELECT * FROM t WHERE name = 'bob'"
    )


def test_query_shape_tolerates_foreign_dialect():
    shape = query_shape("VACUUM   INTO something")
    assert shape  # falls back to whitespace-normalised text


def test_vdt_shape_key_structural():
    transforms = [
        {"type": "filter", "expr": "datum.value >= 990"},
        {"type": "aggregate", "groupby": ["category"], "ops": ["count"], "as": ["n"]},
    ]
    drifted = [
        {"type": "filter", "expr": "datum.value >= 62.5"},
        {"type": "aggregate", "groupby": ["category"], "ops": ["count"], "as": ["n"]},
    ]
    assert vdt_shape_key("events", transforms) == vdt_shape_key("events", drifted)
    assert vdt_shape_key("events", transforms) != vdt_shape_key("other", transforms)
    other_group = [dict(transforms[0]), {**transforms[1], "groupby": ["region"]}]
    assert vdt_shape_key("events", transforms) != vdt_shape_key("events", other_group)


# --------------------------------------------------------------------------- #
# Explain calibration
# --------------------------------------------------------------------------- #


def test_explain_calibrated_by_feedback():
    database = Database()
    database.register_rows(
        "t", [{"x": float(i % 50), "c": f"c{i % 5}"} for i in range(1000)]
    )
    sql = "SELECT c, COUNT(*) AS n FROM t WHERE x >= 10 GROUP BY c"
    uncalibrated = database.explain(sql)
    feedback = CardinalityFeedback()
    for _ in range(20):
        feedback.observe(query_shape(sql), 500.0)
    calibrated = database.explain(sql, feedback=feedback)
    assert calibrated.uncalibrated_rows == uncalibrated.estimated_rows
    assert calibrated.estimated_rows != uncalibrated.estimated_rows
    assert calibrated.estimated_rows == pytest.approx(500.0, rel=0.2)
    # A query of a different shape is untouched.
    other = database.explain("SELECT c FROM t", feedback=feedback)
    assert other.estimated_rows == other.uncalibrated_rows


# --------------------------------------------------------------------------- #
# FeedbackCollector plumbing
# --------------------------------------------------------------------------- #


def test_collector_records_queries_and_episodes():
    trainer = OnlineComparatorTrainer()
    collector = FeedbackCollector(trainer=trainer)
    collector.record_query("SELECT * FROM t WHERE x >= 5", n_rows=42, latency_seconds=0.1)
    collector.record_query("SELECT * FROM t WHERE x >= 9", n_rows=58, latency_seconds=0.2)
    # Same shape -> one tracked shape, EWMA over both observations.
    assert collector.cardinality.snapshot()["shapes_tracked"] == 1.0
    collector.record_wait(0.05, coalesced=True)
    vector = PlanVector(plan_id=0, counts={"vdt": 1.0}, cardinalities={"vdt": 10.0})
    collector.record_episode(vector, 0.1)
    collector.record_episode(
        PlanVector(plan_id=1, counts={"filter": 1.0}, cardinalities={"filter": 5.0}), 0.4
    )
    snapshot = collector.snapshot()
    assert snapshot["queries_recorded"] == 2
    assert snapshot["episodes_recorded"] == 2
    assert snapshot["waits_recorded"] == 1
    assert snapshot["trainer"]["observations"] == 2.0


def test_session_manager_shares_collector_with_sessions_and_scheduler():
    backend = create_backend("embedded")
    backend.register_rows("t", [{"x": float(i)} for i in range(100)])
    collector = FeedbackCollector()
    manager = SessionManager.for_backend(backend, max_workers=2, feedback=collector)
    try:
        session = manager.create_session("alice")
        assert session.feedback is collector
        session.execute("SELECT COUNT(*) AS n FROM t WHERE x >= 10")
        session.execute("SELECT COUNT(*) AS n FROM t WHERE x >= 90")
        snapshot = collector.snapshot()
        assert snapshot["queries_recorded"] == 2
        # The scheduler reported its waits into the same collector.
        assert snapshot["waits_recorded"] == 2
        assert collector.cardinality.snapshot()["shapes_tracked"] == 1.0
        stats = manager.statistics()
        assert stats["feedback"]["queries_recorded"] == 2
    finally:
        manager.shutdown()
        backend.close()


def test_scheduler_reports_waits():
    collector = FeedbackCollector()
    with RequestScheduler(max_workers=2, feedback=collector) as scheduler:
        scheduler.run("a", lambda: 1)
        scheduler.run("b", lambda: 2)
    assert collector.snapshot()["waits_recorded"] == 2
