"""Tests for plan policies, incremental consolidation and the closed loop."""

import numpy as np
import pytest

from repro.backends import create_backend
from repro.bench.adaptive import adaptive_dashboard_spec, make_event_rows
from repro.core import (
    AdaptivePolicy,
    HeuristicComparator,
    IncrementalConsolidator,
    PlanVector,
    RankSVMComparator,
    StaticPolicy,
    VegaPlusSystem,
    consolidate_session,
)
from repro.core.encoder import FEATURE_OPERATOR_TYPES, feature_names
from repro.errors import OptimizationError
from repro.ml import RankSVM
from repro.net.channel import NetworkModel


# --------------------------------------------------------------------------- #
# IncrementalConsolidator
# --------------------------------------------------------------------------- #


def _vectors(cards):
    return [
        PlanVector(plan_id=i, counts={"vdt": 1.0}, cardinalities={"vdt": c})
        for i, c in enumerate(cards)
    ]


def _cost_comparator():
    """A fitted RankSVM whose cost is exactly the vdt cardinality."""
    model = RankSVM()
    weights = np.zeros(2 * len(FEATURE_OPERATOR_TYPES))
    weights[len(FEATURE_OPERATOR_TYPES) + FEATURE_OPERATOR_TYPES.index("vdt")] = 1.0
    model.weights_ = weights
    return RankSVMComparator(model)


def test_incremental_matches_one_shot_cost_kind():
    comparator = _cost_comparator()
    episodes = [_vectors([5.0, 1.0, 3.0]), _vectors([2.0, 4.0, 1.0])]
    one_shot = consolidate_session(comparator, episodes)
    incremental = IncrementalConsolidator(comparator, 3)
    for episode in episodes:
        decision = incremental.add_episode(episode)
    assert decision.best_plan_index == one_shot.best_plan_index
    assert decision.score_kind == one_shot.score_kind == "cost"
    assert np.allclose(decision.per_plan_score, one_shot.per_plan_score)


def test_incremental_matches_one_shot_wins_kind():
    comparator = HeuristicComparator()
    episodes = [_vectors([50.0, 1.0, 30.0]), _vectors([40.0, 2.0, 20.0])]
    one_shot = consolidate_session(comparator, episodes, episode_weights=[1.0, 2.0])
    incremental = IncrementalConsolidator(comparator, 3)
    incremental.add_episode(episodes[0], weight=1.0)
    incremental.add_episode(episodes[1], weight=2.0)
    decision = incremental.decision()
    assert decision.best_plan_index == one_shot.best_plan_index
    assert decision.score_kind == one_shot.score_kind == "wins"
    assert np.allclose(decision.per_plan_score, one_shot.per_plan_score)


def test_incremental_decision_revisable_as_episodes_arrive():
    comparator = _cost_comparator()
    incremental = IncrementalConsolidator(comparator, 2)
    first = incremental.add_episode(_vectors([1.0, 10.0]))
    assert first.best_plan_index == 0
    # Overwhelming later evidence flips the running decision.
    flipped = incremental.add_episode(_vectors([100.0, 1.0]))
    assert flipped.best_plan_index == 1


def test_incremental_consolidator_guards():
    comparator = HeuristicComparator()
    with pytest.raises(OptimizationError):
        IncrementalConsolidator(comparator, 0)
    incremental = IncrementalConsolidator(comparator, 2)
    with pytest.raises(OptimizationError):
        incremental.decision()
    with pytest.raises(OptimizationError):
        incremental.add_episode(_vectors([1.0, 2.0, 3.0]))


# --------------------------------------------------------------------------- #
# Policies on a live system
# --------------------------------------------------------------------------- #

#: Slow link so plan choice dominates latency (see bench/adaptive.py).
_NETWORK = NetworkModel(rtt_seconds=0.004, bandwidth_bytes_per_second=400_000.0)


def _latency_shaped_comparator():
    """Hand-built linear cost shaped like the bench latency landscape:
    transfers (vdt cardinality) are expensive, client operators carry a
    noticeable per-operator cost, client cardinalities a mild one."""
    model = RankSVM()
    weights = np.zeros(2 * len(FEATURE_OPERATOR_TYPES))
    names = feature_names()
    shaped = {
        "count_vdt": 0.3,
        "cardinality_vdt": 2.0,
        "count_filter": 0.3,
        "count_aggregate": 0.4,
        "count_collect": 0.1,
        "cardinality_filter": 0.3,
        "cardinality_aggregate": 0.3,
    }
    for name, value in shaped.items():
        weights[names.index(name)] = value
    model.weights_ = weights
    return RankSVMComparator(model)


@pytest.fixture()
def adaptive_backend():
    backend = create_backend("embedded", keep_query_log=False)
    backend.register_rows("events", make_event_rows(2_000, 600, seed=3))
    yield backend
    backend.close()


def _make_system(backend, policy):
    return VegaPlusSystem(
        adaptive_dashboard_spec("events"),
        backend,
        comparator=_latency_shaped_comparator(),
        network=_NETWORK,
        enable_cache=False,
        policy=policy,
    )


SELECTIVE = [{"threshold": 990 + i} for i in range(4)]
UNSELECTIVE = [{"threshold": 60 + 3 * i} for i in range(6)]


def test_static_policy_never_replans(adaptive_backend):
    system = _make_system(adaptive_backend, StaticPolicy())
    system.optimize(anticipated_interactions=SELECTIVE)
    initial_plan = system.plan
    system.initialize()
    for interaction in SELECTIVE + UNSELECTIVE:
        system.interact(interaction)
    assert system.plan == initial_plan
    assert system.replans == 0
    counters = system.policy.counters()
    assert counters["policy"] == "static"
    assert counters["episodes_observed"] == len(SELECTIVE) + len(UNSELECTIVE)


def test_adaptive_policy_replans_on_drift_and_preserves_results(adaptive_backend):
    # Caches are off in this fixture, so there are no free episodes to
    # guard against and the floor stays at zero.
    policy = AdaptivePolicy(
        regret_threshold=0.5,
        patience=1,
        cooldown=0,
        replan_window=3,
        horizon=10,
    )
    system = _make_system(adaptive_backend, policy)
    system.optimize(anticipated_interactions=SELECTIVE)
    initial_plan = system.plan
    # The shaped cost model offloads while transfers are cheap.
    assert not initial_plan.is_all_client()
    system.initialize()
    for interaction in SELECTIVE:
        system.interact(interaction)
    assert system.replans == 0  # stationary prefix: nothing to correct

    for interaction in UNSELECTIVE:
        system.interact(interaction)
    assert policy.replan_events, "drift never triggered a replan"
    assert system.replans >= 1
    assert system.plan != initial_plan
    kinds = [result.kind for result in system.history]
    assert "replan" in kinds

    # Adapting must not change results: a static run of the same session
    # ends on identical rows (order-insensitive, float-tolerant).
    baseline = _make_system(adaptive_backend, StaticPolicy())
    baseline.optimize(anticipated_interactions=SELECTIVE)
    baseline.initialize()
    for interaction in SELECTIVE + UNSELECTIVE:
        baseline.interact(interaction)

    def canonical(rows):
        out = []
        for row in rows:
            out.append(tuple(
                (k, round(v, 6) if isinstance(v, float) else v)
                for k, v in sorted(row.items())
            ))
        return sorted(out)

    assert canonical(system.dataset("summary")) == canonical(baseline.dataset("summary"))


def test_adaptive_policy_observe_requires_begin():
    policy = AdaptivePolicy()
    with pytest.raises(OptimizationError):
        policy.observe(PlanVector(plan_id=0), 0.1)


def test_adaptive_policy_parameter_guards():
    with pytest.raises(OptimizationError):
        AdaptivePolicy(regret_threshold=0.0)
    with pytest.raises(OptimizationError):
        AdaptivePolicy(patience=0)
    with pytest.raises(OptimizationError):
        AdaptivePolicy(calibration_alpha=0.0)
    with pytest.raises(OptimizationError):
        AdaptivePolicy(replan_window=0)


def test_max_replans_caps_switching(adaptive_backend):
    policy = AdaptivePolicy(
        regret_threshold=0.2,
        patience=1,
        cooldown=0,
        min_divergence_seconds=0.0,
        max_replans=0,
    )
    system = _make_system(adaptive_backend, policy)
    system.optimize(anticipated_interactions=SELECTIVE)
    system.initialize()
    for interaction in SELECTIVE + UNSELECTIVE:
        system.interact(interaction)
    assert system.replans == 0
    assert policy.replan_events == []


def test_use_plan_bypasses_policy(adaptive_backend):
    """Forced plans (baseline runs) must execute exactly as requested."""
    policy = AdaptivePolicy(regret_threshold=0.2, patience=1, cooldown=0)
    system = _make_system(adaptive_backend, policy)
    plans = system.optimizer.enumerate_plans()
    forced = plans[-1]
    system.use_plan(forced)
    system.initialize()
    for interaction in UNSELECTIVE:
        system.interact(interaction)
    assert system.plan == forced
    assert system.replans == 0


def test_system_stats_merges_subsystems(adaptive_backend):
    system = _make_system(adaptive_backend, StaticPolicy())
    system.optimize()
    system.initialize()
    stats = system.stats()
    assert stats["policy"]["policy"] == "static"
    assert "queries_executed" in stats["engine"]
    assert "server_hit_rate" in stats["cache"]
    assert stats["episodes"] == 1
    assert stats["replans"] == 0
    assert stats["session_seconds"] > 0
