"""Tests for columns, tables, catalog and statistics."""

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.storage import Catalog, Column, ColumnType, Table, compute_table_statistics
from repro.storage.column import factorize_array, sort_rank_key
from repro.storage.statistics import compute_column_statistics
from repro.storage.table import group_segments


# --------------------------------------------------------------------------- #
# Column
# --------------------------------------------------------------------------- #


def test_column_type_inference_numeric():
    column = Column.from_values("x", [1, 2.5, None, 4])
    assert column.ctype is ColumnType.NUMERIC
    assert column.to_pylist() == [1, 2.5, None, 4]


def test_column_type_inference_string():
    column = Column.from_values("x", ["a", None, "b"])
    assert column.ctype is ColumnType.STRING
    assert column.to_pylist() == ["a", None, "b"]


def test_column_null_mask():
    column = Column.from_values("x", [1, None, 3])
    assert list(column.null_mask()) == [False, True, False]


def test_factorize_numeric_puts_null_last():
    codes, uniques = factorize_array(np.array([2.0, np.nan, 1.0, 2.0, np.nan]))
    assert uniques == [1.0, 2.0, None]
    assert codes.tolist() == [1, 2, 0, 1, 2]


def test_factorize_strings_ranks_numbers_before_strings_before_null():
    values = np.array(["b", None, "a", 3.5, "b", None], dtype=object)
    codes, uniques = factorize_array(values)
    assert uniques == [3.5, "a", "b", None]
    assert codes.tolist() == [2, 3, 1, 0, 2, 3]


def test_factorize_empty_and_column_helper():
    codes, uniques = factorize_array(np.array([], dtype=np.float64))
    assert codes.tolist() == [] and uniques == []
    codes, uniques = Column.from_values("x", ["a", "a", None]).factorize()
    assert uniques == ["a", None]
    assert codes.tolist() == [0, 0, 1]


def test_sort_rank_key_total_order():
    ranked = sorted([None, "b", 2.0, "a", 1.5, None], key=sort_rank_key)
    assert ranked == [1.5, 2.0, "a", "b", None, None]


def test_group_segments_orders_groups_and_rows():
    codes = [np.array([1, 0, 1, 0, 2], dtype=np.int64)]
    order, starts, ends = group_segments(codes, 5)
    groups = [order[s:e].tolist() for s, e in zip(starts, ends)]
    assert groups == [[1, 3], [0, 2], [4]]


def test_group_segments_no_keys_is_single_segment():
    order, starts, ends = group_segments([], 3)
    assert order.tolist() == [0, 1, 2]
    assert starts.tolist() == [0] and ends.tolist() == [3]
    _order, starts, ends = group_segments([], 0)
    assert starts.tolist() == [0] and ends.tolist() == [0]


def test_table_distinct_indices_first_occurrence_order():
    table = Table.from_columns({"a": [1, 2, 1, None, 2, None], "b": ["x", "y", "x", "z", "y", "z"]})
    assert table.distinct_indices().tolist() == [0, 1, 3]
    assert table.distinct_indices(subset=["b"]).tolist() == [0, 1, 3]
    empty = Table.empty(["a"])
    assert empty.distinct_indices().tolist() == []


def test_column_take_and_filter():
    column = Column.from_values("x", [10, 20, 30, 40])
    assert column.take(np.array([3, 0])).to_pylist() == [40, 10]
    assert column.filter(np.array([True, False, True, False])).to_pylist() == [10, 30]


def test_column_rename_and_nbytes():
    column = Column.from_values("x", [1.0, 2.0])
    assert column.rename("y").name == "y"
    assert column.nbytes() == 16


# --------------------------------------------------------------------------- #
# Table
# --------------------------------------------------------------------------- #


def test_table_from_rows_and_back(tiny_table_rows):
    table = Table.from_rows(tiny_table_rows)
    assert table.num_rows == 5
    assert table.column_names() == ["category", "value", "weight"]
    assert table.to_rows()[0] == {"category": "a", "value": 10, "weight": 1}


def test_table_from_columns_and_select():
    table = Table.from_columns({"a": [1, 2], "b": ["x", "y"]})
    selected = table.select(["b"])
    assert selected.column_names() == ["b"]
    assert selected.to_columns() == {"b": ["x", "y"]}


def test_table_rejects_mismatched_columns():
    with pytest.raises(ValueError):
        Table([Column.from_values("a", [1]), Column.from_values("b", [1, 2])])
    with pytest.raises(ValueError):
        Table([Column.from_values("a", [1]), Column.from_values("a", [2])])


def test_table_filter_take_slice(tiny_table_rows):
    table = Table.from_rows(tiny_table_rows)
    filtered = table.filter(np.array([True, False, True, False, True]))
    assert filtered.num_rows == 3
    taken = table.take(np.array([4, 0]))
    assert taken.to_rows()[0]["category"] == "c"
    assert table.slice(1, 2).num_rows == 2


def test_table_with_column_and_rename(tiny_table_rows):
    table = Table.from_rows(tiny_table_rows)
    extended = table.with_column(Column.from_values("double", [2.0] * 5))
    assert "double" in extended.column_names()
    renamed = table.rename_columns({"value": "v"})
    assert "v" in renamed.column_names()
    assert "value" not in renamed.column_names()


def test_table_concat_and_mismatch(tiny_table_rows):
    table = Table.from_rows(tiny_table_rows)
    combined = table.concat(table)
    assert combined.num_rows == 10
    other = Table.from_columns({"different": [1]})
    with pytest.raises(ValueError):
        table.concat(other)


def test_table_missing_column_error(tiny_table_rows):
    table = Table.from_rows(tiny_table_rows, name="tiny")
    with pytest.raises(CatalogError):
        table.column("nope")


def test_table_missing_keys_become_null():
    table = Table.from_rows([{"a": 1}, {"b": 2}])
    rows = table.to_rows()
    assert rows[0]["b"] is None
    assert rows[1]["a"] is None


def test_empty_table():
    table = Table.empty(["a", "b"])
    assert table.num_rows == 0
    assert table.column_names() == ["a", "b"]


# --------------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------------- #


def test_catalog_register_and_get(tiny_table_rows):
    catalog = Catalog()
    catalog.register_rows("tiny", tiny_table_rows)
    assert catalog.has("tiny")
    assert catalog.get("tiny").num_rows == 5
    assert catalog.table_names() == ["tiny"]


def test_catalog_duplicate_and_replace(tiny_table_rows):
    catalog = Catalog()
    catalog.register_rows("tiny", tiny_table_rows)
    with pytest.raises(CatalogError):
        catalog.register_rows("tiny", tiny_table_rows)
    catalog.register_rows("tiny", tiny_table_rows[:2], replace=True)
    assert catalog.get("tiny").num_rows == 2


def test_catalog_drop_and_missing(tiny_table_rows):
    catalog = Catalog()
    catalog.register_rows("tiny", tiny_table_rows)
    catalog.drop("tiny")
    assert not catalog.has("tiny")
    with pytest.raises(CatalogError):
        catalog.get("tiny")
    with pytest.raises(CatalogError):
        catalog.drop("tiny")
    with pytest.raises(CatalogError):
        catalog.register("", Table.from_rows(tiny_table_rows))


# --------------------------------------------------------------------------- #
# Statistics
# --------------------------------------------------------------------------- #


def test_column_statistics_numeric(tiny_table_rows):
    table = Table.from_rows(tiny_table_rows)
    stats = compute_column_statistics(table.column("value"))
    assert stats.num_values == 5
    assert stats.num_nulls == 1
    assert stats.minimum == 10
    assert stats.maximum == 50
    assert stats.num_distinct == 4
    assert 0 < stats.null_fraction < 1


def test_column_statistics_string(tiny_table_rows):
    table = Table.from_rows(tiny_table_rows)
    stats = compute_column_statistics(table.column("category"))
    assert stats.num_distinct == 3
    assert stats.selectivity_equals() == pytest.approx(1 / 3)


def test_table_statistics_and_range_selectivity(tiny_table_rows):
    table = Table.from_rows(tiny_table_rows, name="tiny")
    stats = compute_table_statistics(table)
    assert stats.num_rows == 5
    value_stats = stats.column("value")
    assert value_stats.selectivity_range(10, 30) == pytest.approx(0.5)
    assert value_stats.selectivity_range(None, 1000) == 1.0
    assert value_stats.selectivity_range(100, 200) == 0.0
    assert stats.column("missing") is None
