"""End-to-end tests of VegaPlusSystem, the optimizer facade and baselines."""

import pytest

from repro.baselines import VegaFusionSystem, VegaNativeSystem
from repro.core import HeuristicComparator, VegaPlusOptimizer, VegaPlusSystem
from repro.core.enumerator import PlanEnumerator
from repro.errors import OptimizationError
from repro.net import MiddlewareServer, NetworkModel
from repro.vega.spec import parse_spec_dict


INTERACTIONS = [{"maxbins": 30}, {"min_delay": 100}, {"maxbins": 15}]


# --------------------------------------------------------------------------- #
# Optimizer facade
# --------------------------------------------------------------------------- #


def test_optimizer_enumerates_and_chooses_offloaded_plan(histogram_spec, flights_db):
    middleware = MiddlewareServer(flights_db)
    optimizer = VegaPlusOptimizer(histogram_spec, middleware, HeuristicComparator())
    plans = optimizer.enumerate_plans()
    assert len(plans) == 5
    result = optimizer.choose_plan(anticipated_interactions=INTERACTIONS)
    assert result.n_candidates == 5
    assert result.decision is not None
    # For 500 rows with a lean histogram pipeline, offloading everything is
    # the expected heuristic choice (tiny result vs full table transfer).
    assert result.plan.split_for("binned") >= 3


def test_optimizer_encode_candidates_episode_structure(histogram_spec, flights_db):
    middleware = MiddlewareServer(flights_db)
    optimizer = VegaPlusOptimizer(histogram_spec, middleware)
    plans = optimizer.enumerate_plans()
    episodes, rewritten = optimizer.encode_candidates(plans, [{"maxbins": 30}])
    assert len(episodes) == 2  # initial render + one interaction
    assert len(episodes[0]) == len(plans)
    assert len(rewritten) == len(plans)
    with pytest.raises(OptimizationError):
        optimizer.encode_candidates([])


# --------------------------------------------------------------------------- #
# VegaPlusSystem
# --------------------------------------------------------------------------- #


def test_system_requires_plan_before_execution(histogram_spec, flights_db):
    system = VegaPlusSystem(histogram_spec, flights_db)
    with pytest.raises(OptimizationError):
        system.initialize()


def test_system_end_to_end_session(histogram_spec, flights_db, flights_rows):
    system = VegaPlusSystem(histogram_spec, flights_db)
    system.optimize(anticipated_interactions=INTERACTIONS)
    results = system.run_session(INTERACTIONS)
    assert len(results) == 4
    assert results[0].kind == "initial"
    assert all(r.kind == "interaction" for r in results[1:])
    assert system.session_seconds() == pytest.approx(
        sum(r.total_seconds for r in results)
    )
    binned = system.dataset("binned")
    # After the last interaction (maxbins=15, min_delay=100) the histogram
    # only covers delays >= 100.
    expected = sum(1 for r in flights_rows if r["delay"] is not None and r["delay"] >= 100)
    assert sum(r["count"] for r in binned) == expected
    assert "plan#" in system.describe_plan()


def test_system_breakdown_components(histogram_spec, flights_db):
    system = VegaPlusSystem(histogram_spec, flights_db)
    system.use_plan(PlanEnumerator(system.spec).all_server_plan())
    result = system.initialize()
    breakdown = result.breakdown
    assert breakdown.total_seconds == pytest.approx(
        breakdown.client_seconds
        + breakdown.server_seconds
        + breakdown.network_seconds
        + breakdown.serialization_seconds
    )
    assert breakdown.server_seconds > 0
    assert breakdown.network_seconds > 0


def test_system_results_equivalent_across_plans(histogram_spec, flights_db):
    """The chosen partitioning must not change what the user sees."""
    reference = None
    for split in (0, 2, 4):
        system = VegaPlusSystem(histogram_spec, flights_db)
        system.use_plan(
            next(
                p
                for p in PlanEnumerator(system.spec).enumerate()
                if p.split_for("binned") == split
            )
        )
        system.initialize()
        system.interact({"maxbins": 25})
        binned = {
            (round(r["bin0"], 6), r["count"]) for r in system.dataset("binned")
        }
        if reference is None:
            reference = binned
        else:
            assert binned == reference


def test_system_cache_statistics_exposed(histogram_spec, flights_db):
    system = VegaPlusSystem(histogram_spec, flights_db)
    system.optimize()
    system.initialize()
    system.interact({"maxbins": 30})
    system.interact({"maxbins": 20})
    system.interact({"maxbins": 30})
    stats = system.cache_statistics()
    assert stats["queries_executed"] >= 1
    assert stats["client_hit_rate"] >= 0.0


# --------------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------------- #


def test_native_vega_is_all_client(histogram_spec, flights_db):
    system = VegaNativeSystem(histogram_spec, flights_db)
    assert system.plan is not None and system.plan.is_all_client()
    assert system.optimize() is None
    results = system.run_session(INTERACTIONS[:1])
    assert len(results) == 2
    # The all-client plan pays the raw-table transfer on initial render.
    assert results[0].breakdown.network_seconds > results[1].breakdown.network_seconds


def test_vegafusion_is_all_server(histogram_spec, flights_db):
    system = VegaFusionSystem(histogram_spec, flights_db)
    assert system.plan is not None and system.plan.is_all_server(system.spec)
    assert system.optimize() is None
    results = system.run_session(INTERACTIONS[:1])
    assert len(results) == 2


def test_vegaplus_not_slower_than_native_on_larger_data(histogram_spec):
    from repro.datasets import generate_dataset
    from repro.sql import Database

    rows = generate_dataset("flights", 20_000, seed=11)
    db = Database()
    db.register_rows("flights", rows)
    network = NetworkModel.lan()

    plus = VegaPlusSystem(histogram_spec, db, network=network)
    plus.optimize(anticipated_interactions=INTERACTIONS)
    plus.run_session(INTERACTIONS)

    native = VegaNativeSystem(histogram_spec, db, network=network)
    native.run_session(INTERACTIONS)

    assert plus.session_seconds() < native.session_seconds()
